// Package lockorder implements the repo-wide lock-acquisition-order analyzer:
// it builds the program's lock-order graph — an edge A → B for every place
// the code can acquire lock class B while holding lock class A — and reports
// every edge that participates in a cycle. A cycle means two code paths can
// acquire the same two lock classes in opposite orders, the classic deadlock
// PR 7's review found in bufpool (faultLocked registering frames with the
// clock sweep while holding a shard lock: shard → evictMu, against the
// sweep's evictMu → shard).
//
// Lock classes, not lock instances: every sync.Mutex/RWMutex reached through
// the same struct field (or the same package-level variable) is one class, so
// a 16-way shard array is the single class "shard.mu" and the analysis scales
// to any fan-out. RLock counts as an acquisition of the same class — reader
// and writer locks on one RWMutex still order against other locks.
//
// The analysis is interprocedural via function summaries. Each function body
// is walked linearly, tracking the held set: Lock pushes a class, Unlock pops
// it (a deferred Unlock holds the class to the end of the function), and a
// `go` statement or function literal starts a fresh walk with an empty held
// set (a new goroutine inherits no locks; a literal runs who-knows-when).
// Direct nesting records an edge held → acquired. Every call made with a
// non-empty held set records an edge from each held class to every class in
// the callee's transitive acquisition summary — the fixpoint union of all
// locks a call into that function may take, which is how an order inversion
// hidden two helpers deep still connects to the graph.
//
// Known approximations, all deliberate: the walk is linear (branch-local
// Lock/Unlock pairs are modeled; locks held across exotic control flow may
// be missed or over-held), locks in local variables or parameters form no
// class (they cannot express a cross-function order), and calls through
// plain function values resolve to nothing. The acquisition summary also
// includes locks taken by goroutines a callee spawns — an over-approximation
// that can add edges that are not same-goroutine orders; annotate such a
// finding with //ordlint:ignore if it arises.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ordxml/internal/lint/framework"
)

// Analyzer is the lock-order pass.
var Analyzer = &framework.Analyzer{
	Name:       "lockorder",
	Doc:        "lock acquisition order must be acyclic across the whole program (cycles are potential deadlocks)",
	RunProgram: run,
}

// lockOp classifies a mutex method call.
type lockOp int

const (
	opNone lockOp = iota
	opAcquire
	opRelease
)

// classify returns the lock operation a sync.Mutex/RWMutex method performs.
func classify(name string) lockOp {
	switch name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return opAcquire
	case "Unlock", "RUnlock":
		return opRelease
	}
	return opNone
}

// isSyncLockMethod reports whether obj is a method of sync.Mutex or
// sync.RWMutex.
func isSyncLockMethod(obj *types.Func) bool {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

// edge is one observed acquisition order: to was (or may be) acquired while
// from was held.
type edge struct {
	from, to string
}

type edgeInfo struct {
	pos token.Pos
	via string // "" for a direct nested acquisition, else the callee name
}

type analysis struct {
	pass  *framework.ProgramPass
	prog  *framework.Program
	edges map[edge]edgeInfo
	// acquired collects each function's direct acquisitions (closures
	// included) for the transitive summary.
	acquired map[*framework.Func][]string
	// leadRelease marks classes a function releases before ever acquiring —
	// the hand-over-hand shape (wal.Log.commitLocked: called with the lock
	// held, it unlocks for the disk work and relocks). Re-acquiring such a
	// class is not a self-deadlock: the caller's hold was given up first.
	leadRelease map[*framework.Func]map[string]bool
	// heldCalls records call sites made with locks held, for the
	// interprocedural edges once summaries are known.
	heldCalls []heldCall
}

type heldCall struct {
	held []string
	site *framework.CallSite
	fn   *framework.Func
}

func run(pass *framework.ProgramPass) error {
	a := &analysis{
		pass:        pass,
		prog:        pass.Prog,
		edges:       map[edge]edgeInfo{},
		acquired:    map[*framework.Func][]string{},
		leadRelease: map[*framework.Func]map[string]bool{},
	}
	for _, fn := range a.prog.Functions() {
		a.walkFunc(fn)
	}

	// Transitive acquisition summaries, then the interprocedural edges: a
	// call with held set H may acquire anything in the callee's summary. The
	// second, "unsafe" summary excludes hand-over-hand re-acquisitions
	// (classes the function releases before acquiring) and gates self-edges
	// only: a callee that gives the caller's hold up before relocking cannot
	// deadlock against that same class, but an order against every OTHER
	// held class is still real.
	summaries := a.prog.UnionSummaries(func(fn *framework.Func) []string {
		return a.acquired[fn]
	})
	unsafeSums := a.prog.UnionSummaries(func(fn *framework.Func) []string {
		var out []string
		for _, k := range a.acquired[fn] {
			if !a.leadRelease[fn][k] {
				out = append(out, k)
			}
		}
		return out
	})
	for _, hc := range a.heldCalls {
		var may []string
		seen := map[string]bool{}
		mayUnsafe := map[string]bool{}
		for _, t := range hc.site.Targets {
			for k := range summaries[t] {
				if !seen[k] {
					seen[k] = true
					may = append(may, k)
				}
			}
			for k := range unsafeSums[t] {
				mayUnsafe[k] = true
			}
		}
		sort.Strings(may)
		callee := calleeName(hc.site)
		for _, to := range may {
			for _, from := range hc.held {
				if from == to && !mayUnsafe[to] {
					continue // hand-over-hand re-acquisition, not a self-cycle
				}
				a.addEdge(from, to, hc.site.Call.Pos(), callee)
			}
		}
	}

	a.reportCycles()
	return nil
}

// walkFunc walks one declared function; function literals inside it are
// walked as separate roots with an empty held set.
func (a *analysis) walkFunc(fn *framework.Func) {
	sites := map[*ast.CallExpr]*framework.CallSite{}
	for _, cs := range fn.Calls {
		sites[cs.Call] = cs
	}
	var roots []*ast.BlockStmt
	roots = append(roots, fn.Decl.Body)
	collected := map[*ast.BlockStmt]bool{fn.Decl.Body: true}
	// Function literals become separate roots, discovered during each walk.
	for len(roots) > 0 {
		body := roots[0]
		roots = roots[1:]
		w := &walker{a: a, fn: fn, sites: sites, skip: map[ast.Node]bool{}}
		w.walk(body)
		for _, lit := range w.lits {
			if !collected[lit.Body] {
				collected[lit.Body] = true
				roots = append(roots, lit.Body)
			}
		}
	}
}

// walker performs the linear held-set walk over one body.
type walker struct {
	a     *analysis
	fn    *framework.Func
	sites map[*ast.CallExpr]*framework.CallSite
	held  []string
	lits  []*ast.FuncLit
	skip  map[ast.Node]bool
}

func (w *walker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || w.skip[n] {
			return !w.skip[n]
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			w.lits = append(w.lits, st)
			return false // separate root, empty held set
		case *ast.GoStmt:
			// The spawned goroutine holds none of our locks; its call and
			// closure are analyzed as lock-free roots.
			w.skip[st.Call] = true
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				w.lits = append(w.lits, lit)
				w.skip[lit] = true
			}
			return true
		case *ast.DeferStmt:
			// A deferred Unlock keeps the class held to the end of the walk.
			// Other deferred calls are treated as calls at the defer site.
			if key, op := w.lockCall(st.Call); op == opRelease && key != "" {
				w.skip[st.Call] = true
			}
			return true
		case *ast.CallExpr:
			w.handleCall(st)
			return true
		}
		return true
	})
}

// handleCall processes one call expression in source order: a mutex
// acquisition, a mutex release, or an ordinary call site.
func (w *walker) handleCall(call *ast.CallExpr) {
	key, op := w.lockCall(call)
	switch op {
	case opAcquire:
		if key == "" {
			return
		}
		for _, h := range w.held {
			w.a.addEdge(h, key, call.Pos(), "")
		}
		w.held = append(w.held, key)
		w.a.acquired[w.fn] = append(w.a.acquired[w.fn], key)
		return
	case opRelease:
		if key == "" {
			return
		}
		for i := len(w.held) - 1; i >= 0; i-- {
			if w.held[i] == key {
				w.held = append(w.held[:i], w.held[i+1:]...)
				return
			}
		}
		// Releasing a class this body never acquired: the hand-over-hand
		// shape (the caller's hold is being given up).
		if !contains(w.a.acquired[w.fn], key) {
			if w.a.leadRelease[w.fn] == nil {
				w.a.leadRelease[w.fn] = map[string]bool{}
			}
			w.a.leadRelease[w.fn][key] = true
		}
		return
	}
	if len(w.held) == 0 {
		return
	}
	if cs, ok := w.sites[call]; ok && len(cs.Targets) > 0 {
		w.a.heldCalls = append(w.a.heldCalls, heldCall{
			held: append([]string(nil), w.held...),
			site: cs,
			fn:   w.fn,
		})
	}
}

// lockCall classifies call as a mutex operation and resolves the lock class
// key ("" when the mutex forms no class: local variables, parameters,
// unresolvable receivers).
func (w *walker) lockCall(call *ast.CallExpr) (string, lockOp) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	info := w.fn.Pkg.Info
	selection, ok := info.Selections[sel]
	if !ok {
		return "", opNone
	}
	obj, ok := selection.Obj().(*types.Func)
	if !ok || !isSyncLockMethod(obj) {
		return "", opNone
	}
	op := classify(obj.Name())
	if op == opNone {
		return "", opNone
	}
	return w.lockClass(sel, selection), op
}

// lockClass derives the lock-class key for the receiver of a mutex method
// call: "pkg.Type.field" for a mutex struct field (however deeply the
// receiver chain indexes or derefs to reach it), "pkg.var" for a
// package-level mutex variable, and "pkg.Type.<embedded path>" for a mutex
// promoted through embedding.
func (w *walker) lockClass(sel *ast.SelectorExpr, selection *types.Selection) string {
	info := w.fn.Pkg.Info
	recv := ast.Unparen(sel.X)
	t := deref(info.TypeOf(recv))

	if isSyncLock(t) {
		switch x := recv.(type) {
		case *ast.SelectorExpr:
			// base.field — the common shape. The class is the field on the
			// base's named type.
			base := deref(info.TypeOf(x.X))
			if named, ok := base.(*types.Named); ok {
				return typeKey(named) + "." + x.Sel.Name
			}
			return ""
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if obj == nil || obj.Pkg() == nil {
				return ""
			}
			if obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + obj.Name()
			}
			return "" // local variable or parameter: no class
		}
		return ""
	}

	// Promoted method through embedding: the receiver is the outer struct;
	// the selection's index path names the embedded field chain.
	if named, ok := t.(*types.Named); ok {
		idx := selection.Index()
		parts := []string{typeKey(named)}
		cur := named.Underlying()
		for _, i := range idx[:len(idx)-1] {
			st, ok := cur.(*types.Struct)
			if !ok || i >= st.NumFields() {
				return ""
			}
			f := st.Field(i)
			parts = append(parts, f.Name())
			cur = deref(f.Type()).Underlying()
		}
		return strings.Join(parts, ".")
	}
	return ""
}

// calleeName renders a call site's callee as pkg.Recv.Name for diagnostics,
// preferring a resolved program target (whose rendering includes receiver and
// package) over the bare method name.
func calleeName(cs *framework.CallSite) string {
	if len(cs.Targets) > 0 {
		return cs.Targets[0].Name()
	}
	obj := cs.Callee
	name := obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := deref(sig.Recv().Type()).(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if obj.Pkg() != nil {
		name = obj.Pkg().Name() + "." + name
	}
	return name
}

// typeKey renders a named type as pkg.Name.
func typeKey(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

func contains(s []string, k string) bool {
	for _, v := range s {
		if v == k {
			return true
		}
	}
	return false
}

func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isSyncLock reports whether t is sync.Mutex or sync.RWMutex.
func isSyncLock(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// addEdge records one acquisition-order edge, keeping the first position
// observed for deterministic reporting.
func (a *analysis) addEdge(from, to string, pos token.Pos, via string) {
	// from == to is kept: re-acquiring a held class is a self-deadlock unless
	// the instances provably differ, and reads as a cycle of one.
	e := edge{from, to}
	if _, ok := a.edges[e]; !ok {
		a.edges[e] = edgeInfo{pos: pos, via: via}
	}
}

// reportCycles finds strongly connected components of the lock-order graph
// and reports every edge inside one (self-loops included).
func (a *analysis) reportCycles() {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for e := range a.edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	for k := range adj {
		sort.Strings(adj[k])
	}
	comp := tarjan(nodes, adj)

	type report struct {
		e    edge
		info edgeInfo
	}
	var reports []report
	for e, info := range a.edges {
		if e.from == e.to {
			reports = append(reports, report{e, info})
			continue
		}
		if comp[e.from] == comp[e.to] {
			reports = append(reports, report{e, info})
		}
	}
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].e.from != reports[j].e.from {
			return reports[i].e.from < reports[j].e.from
		}
		return reports[i].e.to < reports[j].e.to
	})
	for _, r := range reports {
		cycle := a.cycleString(comp, r.e)
		if r.info.via != "" {
			a.pass.Reportf(r.info.pos,
				"lock order cycle: call to %s may acquire %s while %s is held (%s)",
				r.info.via, r.e.to, r.e.from, cycle)
		} else {
			a.pass.Reportf(r.info.pos,
				"lock order cycle: %s acquired while %s is held (%s)",
				r.e.to, r.e.from, cycle)
		}
	}
}

// cycleString renders the component the edge belongs to, e.g.
// "cycle: bufpool.Pool.evictMu → bufpool.shard.mu → bufpool.Pool.evictMu".
func (a *analysis) cycleString(comp map[string]int, e edge) string {
	if e.from == e.to {
		return fmt.Sprintf("cycle: %s → %s", e.from, e.to)
	}
	var members []string
	for k, c := range comp {
		if c == comp[e.from] {
			members = append(members, k)
		}
	}
	sort.Strings(members)
	return "cycle: " + strings.Join(members, " → ") + " → " + members[0]
}

// tarjan assigns each node a strongly-connected-component id.
func tarjan(nodes map[string]bool, adj map[string][]string) map[string]int {
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, ncomp := 0, 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, wn := range adj[v] {
			if _, seen := index[wn]; !seen {
				strong(wn)
				if low[wn] < low[v] {
					low[v] = low[wn]
				}
			} else if onStack[wn] && index[wn] < low[v] {
				low[v] = index[wn]
			}
		}
		if low[v] == index[v] {
			for {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[u] = false
				comp[u] = ncomp
				if u == v {
					break
				}
			}
			ncomp++
		}
	}
	for _, n := range order {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	return comp
}
