// Package bufpool reproduces, in miniature, the lock-order inversion PR 7's
// review found in the engine's buffer pool before the fix: the page-fault
// path registered the new frame with the clock sweep while still holding its
// shard lock (shard.mu → evictMu), while the eviction sweep holds evictMu and
// locks each shard to flush victims (evictMu → shard.mu). Two goroutines on
// those paths can deadlock. The analyzer must connect the fault-path half of
// the cycle through the addToClock helper — the acquisition is one call deep.
package bufpool

import "sync"

type shard struct {
	mu     sync.Mutex
	frames map[int]int
}

type Pool struct {
	evictMu sync.Mutex
	clock   []int
	viewMu  sync.RWMutex
	mu      sync.Mutex
	shards  [4]shard
}

// Fault is the pre-fix page-fault path: the clock registration happens while
// the shard lock is held, completing the cycle against makeRoom.
func (p *Pool) Fault(id int) {
	sh := &p.shards[id%4]
	sh.mu.Lock()
	sh.frames[id] = id
	p.addToClock(id) // want `lock order cycle: call to bufpool.Pool.addToClock may acquire bufpool.Pool.evictMu while bufpool.shard.mu is held`
	sh.mu.Unlock()
}

func (p *Pool) addToClock(id int) {
	p.evictMu.Lock()
	p.clock = append(p.clock, id)
	p.evictMu.Unlock()
}

// FaultFixed is the post-fix shape: registration is hoisted out of the shard
// critical section, so no shard.mu → evictMu edge arises here.
func (p *Pool) FaultFixed(id int) {
	sh := &p.shards[id%4]
	sh.mu.Lock()
	sh.frames[id] = id
	sh.mu.Unlock()
	p.addToClock(id)
}

// makeRoom is the eviction sweep: evictMu guards the clock hand, and each
// victim's shard is locked to flush it — the other half of the cycle.
func (p *Pool) makeRoom() {
	p.evictMu.Lock()
	defer p.evictMu.Unlock()
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock() // want `lock order cycle: bufpool.shard.mu acquired while bufpool.Pool.evictMu is held`
		sh.frames = nil
		sh.mu.Unlock()
	}
}

// Stats and Publish order viewMu and evictMu oppositely; RLock counts as an
// acquisition of the same class, so the reader side still forms the cycle.
func (p *Pool) Stats() int {
	p.viewMu.RLock()
	defer p.viewMu.RUnlock()
	p.evictMu.Lock() // want `lock order cycle: bufpool.Pool.evictMu acquired while bufpool.Pool.viewMu is held`
	n := len(p.clock)
	p.evictMu.Unlock()
	return n
}

func (p *Pool) Publish() {
	p.evictMu.Lock()
	defer p.evictMu.Unlock()
	p.viewMu.Lock() // want `lock order cycle: bufpool.Pool.viewMu acquired while bufpool.Pool.evictMu is held`
	p.viewMu.Unlock()
}

// FreeID nests Pool.mu → shard.mu, an order nothing inverts: edges that are
// not part of any cycle are not findings.
func (p *Pool) FreeID(id int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sh := &p.shards[id%4]
	sh.mu.Lock()
	delete(sh.frames, id)
	sh.mu.Unlock()
}

// Sweep spawns a goroutine that locks Pool.mu while the spawner holds
// evictMu. The goroutine inherits no locks, so this must NOT create an
// evictMu → Pool.mu edge (which would close a false cycle with statsLoop).
func (p *Pool) Sweep() {
	p.evictMu.Lock()
	go func() {
		p.mu.Lock()
		p.clock = nil
		p.mu.Unlock()
	}()
	p.evictMu.Unlock()
}

// statsLoop orders Pool.mu → evictMu; combined with a (bogus) edge from
// Sweep's goroutine this would be a cycle, so it guards the goroutine rule.
func (p *Pool) statsLoop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.addToClock(0)
}

// flushPending mirrors wal.Log.commitLocked's group-commit shape: entered
// with Pool.mu held, it hands the lock over (unlock, disk work, relock).
// The re-acquisition must NOT read as a Pool.mu self-cycle.
func (p *Pool) flushPending() {
	p.mu.Unlock()
	p.clock = append(p.clock[:0], p.clock...)
	p.mu.Lock()
}

func (p *Pool) CommitAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.flushPending()
}

// lockAgain, by contrast, plainly re-locks a class its caller already
// holds: a genuine self-deadlock.
func (p *Pool) lockAgain() {
	p.mu.Lock()
	p.clock = nil
	p.mu.Unlock()
}

func (p *Pool) reenter() {
	p.mu.Lock()
	p.lockAgain() // want `lock order cycle: call to bufpool.Pool.lockAgain may acquire bufpool.Pool.mu while bufpool.Pool.mu is held`
	p.mu.Unlock()
}

// Registry exercises the promoted-method path: an embedded sync.Mutex forms
// the class bufpool.Registry.Mutex.
type Registry struct {
	sync.Mutex
	m map[string]int
}

var registry = Registry{m: map[string]int{}}

func Register(name string) {
	registry.Lock()
	defer registry.Unlock()
	registry.m[name] = 1
}
