package lockorder_test

import (
	"testing"

	"ordxml/internal/lint/framework"
	"ordxml/internal/lint/lockorder"
)

// TestLockOrder runs the analyzer over the regression fixture modeled on the
// pre-fix PR 7 buffer pool: the fault path's shard.mu → evictMu acquisition
// (one call deep, via addToClock) against the sweep's evictMu → shard.mu.
func TestLockOrder(t *testing.T) {
	framework.RunTest(t, lockorder.Analyzer, "testdata/src/bufpool")
}
