// Package walfirst implements the durability-contract analyzer: on a durable
// store, every mutation must reach the write-ahead log before it reaches
// engine state. The contract has two halves, both checked interprocedurally
// over the call graph:
//
//  1. WAL-before-apply. Every exported method on a type named Store (the
//     public mutation surface) is walked in source order. A call that can
//     reach a WAL append (wal.Log.Append / AppendSync, through any helper
//     chain — in the engine that chain is Store.logOp) marks the path as
//     logged; a call that can reach a state-apply anchor (sqldb.DB.Exec /
//     ExecCtx / BulkInsert, sqldb.Stmt.Exec, heap.Heap.Insert / Delete /
//     Update / AppendBatch, btree.Tree.Insert / Delete / BulkLoad) before
//     that point is a finding. A call that reaches both — a delegation like
//     LoadString → Load, which logs internally before applying — satisfies
//     the contract. The memory-only escape hatch `if s.dur == nil { ... }`
//     is recognized structurally and its body exempted: with no durable
//     state there is nothing to log.
//
//  2. Flush barrier. Any function that writes a page image to disk (a call
//     to a method named WritePage) must first call EnsureDurable in the same
//     body: the WAL must be fsynced through the page's LSN before the page
//     can overwrite its disk image, or a crash could leave a page newer than
//     the log that explains it. The engine's EnsureDurable is a wired
//     closure field, invisible to static callee resolution, so this half
//     matches the call syntactically.
//
// The check is path-insensitive beyond the dur-guard: it asks "is there any
// textually earlier call that logs", not "does every control-flow path log".
// That is the right polarity for a contract linter — the engine's entries
// log unconditionally at the top — and deliberate violations (checkpoint
// metadata writes, which record WAL positions and must not themselves be
// WAL-logged) carry //ordlint:ignore annotations with their justification.
package walfirst

import (
	"go/ast"
	"go/types"

	"ordxml/internal/lint/framework"
)

// Analyzer is the WAL-first durability pass.
var Analyzer = &framework.Analyzer{
	Name:       "walfirst",
	Doc:        "durable mutation paths must append to the WAL before applying engine state, and page writes need a durability barrier",
	RunProgram: run,
}

// isWALAppend reports whether obj is wal.Log.Append or wal.Log.AppendSync.
func isWALAppend(obj *types.Func) bool {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Name() != "wal" {
		return false
	}
	if obj.Name() != "Append" && obj.Name() != "AppendSync" {
		return false
	}
	return recvNamed(obj) == "Log"
}

// applyAnchors lists the engine-state mutation anchors: package name →
// receiver type → method set.
var applyAnchors = map[string]map[string]map[string]bool{
	"sqldb": {
		"DB":   {"Exec": true, "ExecCtx": true, "BulkInsert": true},
		"Stmt": {"Exec": true},
	},
	"heap": {
		"Heap": {"Insert": true, "Delete": true, "Update": true, "AppendBatch": true},
	},
	"btree": {
		"Tree": {"Insert": true, "Delete": true, "BulkLoad": true},
	},
}

// isApply reports whether obj is one of the state-apply anchors.
func isApply(obj *types.Func) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	byRecv, ok := applyAnchors[obj.Pkg().Name()]
	if !ok {
		return false
	}
	return byRecv[recvNamed(obj)][obj.Name()]
}

// recvNamed returns the name of obj's receiver type ("" for plain functions).
func recvNamed(obj *types.Func) string {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isEntryPoint reports whether fn is part of the public mutation surface: an
// exported method on a receiver type named Store.
func isEntryPoint(fn *framework.Func) bool {
	return fn.Decl.Name.IsExported() && recvNamed(fn.Obj) == "Store"
}

func run(pass *framework.ProgramPass) error {
	prog := pass.Prog
	walReach := prog.Reaches(isWALAppend)
	applyReach := prog.Reaches(isApply)
	for _, fn := range prog.Functions() {
		if isEntryPoint(fn) {
			checkEntry(pass, fn, walReach, applyReach)
		}
		checkFlushBarrier(pass, fn)
	}
	return nil
}

// checkEntry walks one entry point in source order, tracking whether a
// WAL-reaching call has happened yet; apply-reaching calls before that point
// are findings.
func checkEntry(pass *framework.ProgramPass, fn *framework.Func, walReach, applyReach map[*framework.Func]bool) {
	sites := map[*ast.CallExpr]*framework.CallSite{}
	for _, cs := range fn.Calls {
		sites[cs.Call] = cs
	}
	logged := false
	skip := map[ast.Node]bool{}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if skip[n] {
			return false
		}
		switch x := n.(type) {
		case *ast.IfStmt:
			// `if s.dur == nil { ... }` is the memory-only path: nothing to
			// log, so its body is exempt from the contract.
			if isDurNilGuard(x.Cond) {
				skip[x.Body] = true
			}
		case *ast.CallExpr:
			cs, ok := sites[x]
			if !ok {
				return true
			}
			if cs.Reaches(isWALAppend, walReach) {
				logged = true
				return true
			}
			if !logged && cs.Reaches(isApply, applyReach) {
				pass.Reportf(x.Pos(),
					"mutation before WAL append: call to %s applies engine state with no prior WAL append in %s (WAL-first: log the operation, then apply)",
					cs.Callee.Name(), fn.Name())
			}
		}
		return true
	})
}

// isDurNilGuard matches the structural shape `<expr>.dur == nil`.
func isDurNilGuard(cond ast.Expr) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "==" {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	isDur := func(e ast.Expr) bool {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		return ok && sel.Sel.Name == "dur"
	}
	return (isDur(bin.X) && isNil(bin.Y)) || (isDur(bin.Y) && isNil(bin.X))
}

// checkFlushBarrier requires every call to a method named WritePage to be
// preceded, in the same function body, by a call to EnsureDurable. The
// engine's EnsureDurable is a closure field wired at open time, so the match
// is syntactic (selector name), not type-resolved.
func checkFlushBarrier(pass *framework.ProgramPass, fn *framework.Func) {
	ensured := false
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "EnsureDurable":
			ensured = true
		case "WritePage":
			if !ensured {
				pass.Reportf(call.Pos(),
					"page write without durability barrier: WritePage in %s has no preceding EnsureDurable call (the WAL must be fsynced through the page LSN before its disk image is overwritten)",
					fn.Name())
			}
		}
		return true
	})
}
