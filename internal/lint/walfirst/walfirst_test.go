package walfirst_test

import (
	"testing"

	"ordxml/internal/lint/framework"
	"ordxml/internal/lint/walfirst"
)

// TestWALFirst runs the analyzer over a miniature durable store: entries
// that log-then-apply (directly or by delegation) pass, entries that apply
// first — even through an unexported helper — are flagged, the memory-only
// `dur == nil` branch is exempt, and an unfenced WritePage is flagged.
func TestWALFirst(t *testing.T) {
	framework.RunTest(t, walfirst.Analyzer, "testdata/src/store")
}
