// Package store is a miniature durable store exercising the walfirst
// contract: exported Store methods are the mutation surface, logOp is the
// WAL-append helper, and sqldb.DB.Exec is the state-apply anchor.
package store

import (
	"ordxml/internal/lint/walfirst/testdata/src/sqldb"
	"ordxml/internal/lint/walfirst/testdata/src/wal"
)

type durState struct {
	log *wal.Log
}

type Store struct {
	dur *durState
	db  *sqldb.DB
}

// logOp appends one operation record; the WAL anchor is one call deep from
// every entry point, so the analyzer must connect it interprocedurally.
func (s *Store) logOp(kind byte, body []byte) (func(), error) {
	if s.dur == nil {
		return func() {}, nil
	}
	if _, err := s.dur.log.AppendSync(kind, body); err != nil {
		return nil, err
	}
	return func() {}, nil
}

// apply is an unexported helper reaching the apply anchor: not an entry
// point itself, but entries calling it unlogged must be flagged through it.
func (s *Store) apply(sql string) error {
	_, err := s.db.Exec(sql)
	return err
}

// Insert is the contract-conforming shape: log, then apply.
func (s *Store) Insert(x string) error {
	unlock, err := s.logOp(1, []byte(x))
	if err != nil {
		return err
	}
	defer unlock()
	_, err = s.db.Exec("INSERT INTO edge VALUES (?)")
	return err
}

// Rename applies before logging: the classic ordering bug.
func (s *Store) Rename(x string) error {
	if _, err := s.db.Exec("UPDATE node SET tag = ?"); err != nil { // want `mutation before WAL append: call to Exec applies engine state with no prior WAL append in store.Store.Rename`
		return err
	}
	unlock, err := s.logOp(2, []byte(x))
	if err != nil {
		return err
	}
	defer unlock()
	return nil
}

// Drop never logs at all.
func (s *Store) Drop(x string) error {
	_, err := s.db.Exec("DELETE FROM node") // want `mutation before WAL append: call to Exec applies engine state with no prior WAL append in store.Store.Drop`
	return err
}

// Move hides the unlogged apply one helper deep.
func (s *Store) Move(x string) error {
	if err := s.apply("UPDATE node SET parent = ?"); err != nil { // want `mutation before WAL append: call to apply applies engine state with no prior WAL append in store.Store.Move`
		return err
	}
	unlock, err := s.logOp(3, []byte(x))
	if err != nil {
		return err
	}
	defer unlock()
	return nil
}

// Load's memory-only branch is exempt: with s.dur == nil there is no log to
// append to, and the guard body is recognized structurally.
func (s *Store) Load(x string) error {
	if s.dur == nil {
		_, err := s.db.Exec("INSERT INTO node VALUES (?)")
		return err
	}
	unlock, err := s.logOp(4, []byte(x))
	if err != nil {
		return err
	}
	defer unlock()
	_, err = s.db.Exec("INSERT INTO node VALUES (?)")
	return err
}

// LoadString delegates to Load, which logs before applying: a call reaching
// both anchors satisfies the contract.
func (s *Store) LoadString(x string) error {
	return s.Load(x)
}

// Flush-barrier half: WritePage must see an EnsureDurable call earlier in
// the same body.

type pageFile struct{}

func (pageFile) WritePage(id int, lsn uint64, b []byte) error { return nil }

type Pool struct {
	file          pageFile
	EnsureDurable func(lsn uint64) error
}

func (p *Pool) flushFrame(lsn uint64, b []byte) error {
	if p.EnsureDurable != nil {
		if err := p.EnsureDurable(lsn); err != nil {
			return err
		}
	}
	return p.file.WritePage(1, lsn, b)
}

func (p *Pool) flushUnfenced(lsn uint64, b []byte) error {
	return p.file.WritePage(1, lsn, b) // want `page write without durability barrier: WritePage in store.Pool.flushUnfenced has no preceding EnsureDurable call`
}
