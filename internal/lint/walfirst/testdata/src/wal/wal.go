// Package wal is a miniature stand-in for the engine's write-ahead log: the
// walfirst analyzer recognizes the append anchors structurally (methods
// Append/AppendSync on a type Log in a package named wal), so this double
// triggers it without importing the engine.
package wal

type Log struct {
	lsn uint64
}

func (l *Log) Append(kind byte, body []byte) (uint64, error) {
	l.lsn++
	return l.lsn, nil
}

func (l *Log) AppendSync(kind byte, body []byte) (uint64, error) {
	return l.Append(kind, body)
}
