// Package sqldb is a miniature stand-in for the engine's SQL layer: the
// walfirst analyzer recognizes the state-apply anchors structurally
// (DB.Exec and friends in a package named sqldb).
package sqldb

type DB struct {
	rows int
}

func (db *DB) Exec(sql string, args ...any) (int, error) {
	db.rows++
	return 1, nil
}

func (db *DB) BulkInsert(table string, rows [][]any) (int, error) {
	db.rows += len(rows)
	return len(rows), nil
}
