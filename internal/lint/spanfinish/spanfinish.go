// Package spanfinish implements the span-finish analyzer: every obs span
// started with Trace.Start must be finished — via `defer sp.End()` or an
// `sp.End()` call on every path out of the block that owns the span.
//
// An unfinished span is silent: the stage simply never folds its duration
// into the trace, so EXPLAIN ANALYZE and the stage histograms under-report
// without any error. The same applies to the request tracer's *ActiveSpan
// handles: an unended span never reaches the trace buffer, so the request
// silently vanishes from the Chrome export. The analyzer recognizes span
// values structurally (a named type `Span` or `ActiveSpan` declared in a
// package named `obs`, produced by Start, StartSpan, StartRoot, StartChild
// or StartWorker — including the two-value `ctx, sp := ...` forms) and then
// runs a conservative path walk:
//
//   - a deferred End anywhere in the function discharges the span;
//   - otherwise every return statement — and the fall-through exit of the
//     statement list that owns the span — must be preceded by an End call;
//   - a span that escapes (passed to a call, returned, stored, captured by a
//     closure) is assumed to be finished elsewhere and is not flagged;
//   - a span started and immediately discarded is always flagged.
package spanfinish

import (
	"go/ast"
	"go/types"
	"strings"

	"ordxml/internal/lint/framework"
)

// Analyzer is the span-finish pass.
var Analyzer = &framework.Analyzer{
	Name: "spanfinish",
	Doc:  "every obs span started must be finished on all paths (defer sp.End() or End before every exit)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// isSpanType reports whether t is (a pointer to) a named type Span or
// ActiveSpan declared in a package named obs.
func isSpanType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Span" && obj.Name() != "ActiveSpan" {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

// startNames are the function/method names that mint spans.
var startNames = map[string]bool{
	"Start":       true,
	"StartSpan":   true,
	"StartRoot":   true,
	"StartChild":  true,
	"StartWorker": true,
}

// isStartCall reports whether call produces a span via one of the start
// constructors. Two-value constructors (StartRoot, StartSpan return
// (context, span)) yield a tuple; the span is the last result.
func isStartCall(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !startNames[sel.Sel.Name] {
		return false
	}
	t := pass.TypeOf(call)
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return t != nil && isSpanType(t)
}

// checkFunc analyzes one function body. Nested function literals are walked
// separately by run (their spans are their own), and identifiers inside them
// count as escapes for outer spans.
func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	// Collect the span definitions owned by this function: statements of the
	// form `sp := x.Start(...)` (or plain assignment), plus dropped spans.
	type spanDef struct {
		obj   types.Object
		start *ast.CallExpr
		owner []ast.Stmt // statement list containing the definition
		index int        // position of the definition within owner
	}
	var defs []spanDef
	var walkList func(list []ast.Stmt)
	var walkStmt func(s ast.Stmt)
	walkList = func(list []ast.Stmt) {
		for i, s := range list {
			if as, ok := s.(*ast.AssignStmt); ok && len(as.Rhs) == 1 && len(as.Lhs) >= 1 {
				if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isStartCall(pass, call) {
					// The span is the last (or only) result: `sp := x.Start(...)`
					// or `ctx, sp := tr.StartRoot(ctx, ...)`.
					if id, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.ObjectOf(id); obj != nil {
							defs = append(defs, spanDef{obj: obj, start: call, owner: list, index: i})
						}
						continue
					}
				}
			}
			if es, ok := s.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok && isStartCall(pass, call) {
					pass.Reportf(call.Pos(), "span started and immediately dropped: assign it and call End, or remove the Start")
					continue
				}
			}
			walkStmt(s)
		}
	}
	walkStmt = func(s ast.Stmt) {
		switch st := s.(type) {
		case *ast.BlockStmt:
			walkList(st.List)
		case *ast.IfStmt:
			walkList(st.Body.List)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *ast.ForStmt:
			walkList(st.Body.List)
		case *ast.RangeStmt:
			walkList(st.Body.List)
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkList(cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkList(cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkList(cc.Body)
				}
			}
		case *ast.LabeledStmt:
			walkStmt(st.Stmt)
		}
	}
	walkList(body.List)

	for _, d := range defs {
		if hasDeferredEnd(pass, body, d.obj) {
			continue
		}
		if escapes(pass, body, d.obj) {
			continue
		}
		w := &walker{pass: pass, obj: d.obj}
		ended, terminated := w.walkList(d.owner[d.index+1:], false)
		if w.violated || (!ended && !terminated) {
			pass.Reportf(d.start.Pos(),
				"span %s is not finished on all paths: defer %s.End() or call End before every exit",
				d.obj.Name(), d.obj.Name())
		}
	}
}

// isEndCall reports whether e is obj.End() or obj.Finish().
func isEndCall(pass *framework.Pass, e ast.Expr, obj types.Object) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "End" && sel.Sel.Name != "Finish") {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pass.ObjectOf(id) == obj
}

// hasDeferredEnd reports whether the function defers obj.End(), directly or
// through a deferred closure that calls it.
func hasDeferredEnd(pass *framework.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isEndCall(pass, ds.Call, obj) {
			found = true
			return false
		}
		if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if e, ok := m.(ast.Expr); ok && isEndCall(pass, e, obj) {
					found = true
					return false
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// escapes reports whether obj is used anywhere other than as the receiver of
// an End/Finish call (or its own definition): passed as an argument,
// returned, stored, reassigned, captured, etc. Escaped spans are assumed to
// be finished by their new owner.
func escapes(pass *framework.Pass, body *ast.BlockStmt, obj types.Object) bool {
	benign := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "End" && sel.Sel.Name != "Finish") {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			benign[id] = true
		}
		return true
	})
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.ObjectOf(id) != obj || benign[id] {
			return true
		}
		if pass.TypesInfo != nil && pass.TypesInfo.Defs[id] == obj {
			return true // the definition itself
		}
		escaped = true
		return false
	})
	return escaped
}

// walker performs the conservative all-paths-end analysis for one span.
type walker struct {
	pass     *framework.Pass
	obj      types.Object
	violated bool
}

// walkList walks a statement list with the given entry state and returns
// whether the span is definitely ended at the fall-through exit, and whether
// control cannot fall through (all paths returned or panicked).
func (w *walker) walkList(list []ast.Stmt, ended bool) (bool, bool) {
	terminated := false
	for _, s := range list {
		if terminated {
			break // unreachable
		}
		ended, terminated = w.walkStmt(s, ended)
	}
	return ended, terminated
}

func (w *walker) walkStmt(s ast.Stmt, ended bool) (bool, bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if isEndCall(w.pass, st.X, w.obj) {
			return true, false
		}
		if isTerminalCall(st.X) {
			return ended, true
		}
	case *ast.DeferStmt:
		if isEndCall(w.pass, st.Call, w.obj) {
			return true, false
		}
	case *ast.ReturnStmt:
		if !ended {
			w.violated = true
		}
		return ended, true
	case *ast.BranchStmt:
		// break/continue/goto leave this list; the span may still be ended on
		// the resumed path, which a one-pass walk cannot see. Treat as a
		// terminator without judgement (conservatively no violation).
		return ended, true
	case *ast.BlockStmt:
		return w.walkList(st.List, ended)
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, ended)
	case *ast.IfStmt:
		bEnded, bTerm := w.walkList(st.Body.List, ended)
		if st.Else == nil {
			return ended, false
		}
		eEnded, eTerm := w.walkStmt(st.Else, ended)
		merged := ended || ((bEnded || bTerm) && (eEnded || eTerm))
		return merged, bTerm && eTerm
	case *ast.ForStmt:
		w.walkList(st.Body.List, ended)
		return ended, false
	case *ast.RangeStmt:
		w.walkList(st.Body.List, ended)
		return ended, false
	case *ast.SwitchStmt:
		w.walkCases(st.Body, ended)
		return ended, false
	case *ast.TypeSwitchStmt:
		w.walkCases(st.Body, ended)
		return ended, false
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkList(cc.Body, ended)
			}
		}
		return ended, false
	}
	return ended, false
}

func (w *walker) walkCases(body *ast.BlockStmt, ended bool) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			w.walkList(cc.Body, ended)
		}
	}
}

// isTerminalCall reports whether e is a call that never returns: panic, or a
// Fatal/Exit-style function.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		return strings.HasPrefix(fn.Sel.Name, "Fatal") ||
			strings.HasPrefix(fn.Sel.Name, "Panic") || fn.Sel.Name == "Exit"
	}
	return false
}
