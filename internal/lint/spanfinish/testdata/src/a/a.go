// Package a exercises the spanfinish analyzer.
package a

import (
	"errors"

	"ordxml/internal/lint/spanfinish/testdata/src/obs"
)

func deferred(tr *obs.Trace) {
	sp := tr.Start("deferred")
	defer sp.End()
	work()
}

func deferredClosure(tr *obs.Trace) {
	sp := tr.Start("closure")
	defer func() {
		sp.End()
	}()
	work()
}

func straightLine(tr *obs.Trace) {
	sp := tr.Start("straight")
	work()
	sp.End()
}

func earlyReturnLeak(tr *obs.Trace, fail bool) error {
	sp := tr.Start("leaky") // want `span sp is not finished on all paths`
	if fail {
		return errors.New("bail")
	}
	work()
	sp.End()
	return nil
}

func earlyReturnEnded(tr *obs.Trace, fail bool) error {
	sp := tr.Start("careful")
	if fail {
		sp.End()
		return errors.New("bail")
	}
	work()
	sp.End()
	return nil
}

func fallthroughLeak(tr *obs.Trace, ok bool) {
	sp := tr.Start("forgotten") // want `span sp is not finished on all paths`
	if ok {
		sp.End()
	}
	work()
}

func dropped(tr *obs.Trace) {
	tr.Start("dropped") // want `span started and immediately dropped`
	work()
}

func bothBranchesEnd(tr *obs.Trace, fast bool) {
	sp := tr.Start("branchy")
	if fast {
		sp.End()
	} else {
		work()
		sp.End()
	}
}

// escaped spans are someone else's responsibility.
func escapes(tr *obs.Trace) {
	sp := tr.Start("handed-off")
	finishLater(sp)
}

func finishLater(sp obs.Span) {
	sp.End()
}

func panicPath(tr *obs.Trace, bad bool) {
	sp := tr.Start("panicky")
	if bad {
		panic("no recovery, span moot")
	}
	sp.End()
}

func work() {}
