package a

import (
	"errors"

	"ordxml/internal/lint/spanfinish/testdata/src/obs"
)

// The ActiveSpan cases mirror the request-tracer API: two-value
// constructors, child/worker spans, and struct-field hand-off.

func rootDeferred(tr *obs.Trace, ctx int) int {
	ctx, sp := tr.StartRoot(ctx, "root")
	defer sp.End()
	work()
	return ctx
}

func rootLeak(tr *obs.Trace, ctx int, fail bool) error {
	_, sp := tr.StartRoot(ctx, "leaky-root") // want `span sp is not finished on all paths`
	if fail {
		return errors.New("bail")
	}
	sp.End()
	return nil
}

func rootDiscardedSpan(tr *obs.Trace, ctx int) int {
	// Discarding the handle by name is deliberate; the analyzer does not
	// second-guess it.
	ctx2, _ := tr.StartRoot(ctx, "discarded")
	return ctx2
}

func ambientDeferred(ctx int) {
	ctx2, sp := obs.StartSpan(ctx, "stage")
	defer sp.End()
	_ = ctx2
	work()
}

func childStraight(parent *obs.ActiveSpan) {
	sp := parent.StartChild("child")
	work()
	sp.End()
}

func childLeak(parent *obs.ActiveSpan, fail bool) error {
	sp := parent.StartChild("leaky-child") // want `span sp is not finished on all paths`
	if fail {
		return errors.New("bail")
	}
	sp.End()
	return nil
}

func childDropped(parent *obs.ActiveSpan) {
	parent.StartChild("dropped") // want `span started and immediately dropped`
	work()
}

func workerEnded(parent *obs.ActiveSpan) {
	for i := 0; i < 4; i++ {
		w := parent.StartWorker("worker", i)
		work()
		w.End()
	}
}

func workerLeak(parent *obs.ActiveSpan, skip bool) {
	w := parent.StartWorker("worker", 0) // want `span w is not finished on all paths`
	if skip {
		return
	}
	w.End()
}

// holder keeps a span for a later lifecycle phase (the operator-decorator
// pattern); storing it is an escape, so the holder owns the End.
type holder struct {
	span *obs.ActiveSpan
}

func storedInField(h *holder, parent *obs.ActiveSpan) {
	sp := parent.StartChild("stored")
	h.span = sp
}
