// Package obs is a miniature stand-in for the engine's observability
// package: the spanfinish analyzer recognizes span values structurally (a
// named type Span in a package named obs), so this double triggers it
// without importing the engine.
package obs

import "time"

type Trace struct {
	stages map[string]time.Duration
}

type Span struct {
	tr    *Trace
	name  string
	begin time.Time
}

func (t *Trace) Start(name string) Span {
	return Span{tr: t, name: name, begin: time.Now()}
}

func (s Span) End() {
	if s.tr == nil {
		return
	}
	if s.tr.stages == nil {
		s.tr.stages = map[string]time.Duration{}
	}
	s.tr.stages[s.name] += time.Since(s.begin)
}

// ActiveSpan mirrors the request tracer's nil-safe span handle; the analyzer
// must treat it exactly like Span.
type ActiveSpan struct {
	name string
}

// StartRoot mirrors the two-value (context, span) constructor shape.
func (t *Trace) StartRoot(ctx int, name string) (int, *ActiveSpan) {
	return ctx, &ActiveSpan{name: name}
}

func (s *ActiveSpan) StartChild(name string) *ActiveSpan {
	return &ActiveSpan{name: name}
}

func (s *ActiveSpan) StartWorker(name string, worker int) *ActiveSpan {
	return &ActiveSpan{name: name}
}

func (s *ActiveSpan) End() {}

// StartSpan mirrors the package-level ambient-context constructor.
func StartSpan(ctx int, name string) (int, *ActiveSpan) {
	return ctx, &ActiveSpan{}
}
