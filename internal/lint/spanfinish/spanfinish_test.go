package spanfinish_test

import (
	"testing"

	"ordxml/internal/lint/framework"
	"ordxml/internal/lint/spanfinish"
)

func TestSpanFinish(t *testing.T) {
	framework.RunTest(t, spanfinish.Analyzer, "testdata/src/a")
}
