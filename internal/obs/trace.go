package obs

import "time"

// Stage is one named region of a trace with its accumulated duration.
// Repeated spans with the same name fold into one stage (Count tracks how
// many spans contributed, e.g. one SQL statement execution per context node).
type Stage struct {
	Name  string        `json:"name"`
	Dur   time.Duration `json:"dur_ns"`
	Count int64         `json:"count"`
}

// Trace collects stage timings for one operation (one XPath query, one
// statement). A nil *Trace is the disabled state: Start returns a zero Span
// and End is a nil check — no allocation, no time syscall. A Trace is NOT
// safe for concurrent use; it belongs to one operation on one goroutine.
type Trace struct {
	stages []Stage
}

// NewTrace returns an empty enabled trace.
func NewTrace() *Trace { return &Trace{} }

// Span is one started region. Spans are values so starting one never
// allocates; End folds the elapsed time into the owning trace.
type Span struct {
	t     *Trace
	name  string
	start time.Time
}

// Start begins a span. On a nil trace it returns a no-op span.
func (t *Trace) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// End records the span's elapsed time. No-op for spans from a nil trace.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.add(s.name, time.Since(s.start))
}

// add folds d into the named stage (linear scan: traces have a handful of
// stages).
func (t *Trace) add(name string, d time.Duration) {
	for i := range t.stages {
		if t.stages[i].Name == name {
			t.stages[i].Dur += d
			t.stages[i].Count++
			return
		}
	}
	t.stages = append(t.stages, Stage{Name: name, Dur: d, Count: 1})
}

// Add records an externally measured duration against a stage.
func (t *Trace) Add(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.add(name, d)
}

// Stages returns the recorded stages in first-started order. The slice is a
// copy and safe to retain. Nil trace returns nil.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	return append([]Stage(nil), t.stages...)
}

// Total returns the sum of all stage durations.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	var total time.Duration
	for _, s := range t.stages {
		total += s.Dur
	}
	return total
}
