package obs

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"wal.fsync":       "ordxml_wal_fsync",
		"bufpool.hits":    "ordxml_bufpool_hits",
		"a-b c/9:x_Y":     "ordxml_a_b_c_9:x_Y",
		"query.latency µ": "ordxml_query_latency___", // multi-byte rune maps per byte
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("wal.records").Add(12)
	r.Gauge("bufpool.dirty_ratio_pct").Set(25)
	r.RegisterFunc("wal.durable_lag", func() int64 { return 3 })
	h := r.Histogram("query.latency")
	h.Observe(10 * time.Microsecond)
	h.Observe(10 * time.Microsecond)
	h.Observe(5 * time.Millisecond)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE ordxml_wal_records counter\nordxml_wal_records 12\n",
		"# TYPE ordxml_bufpool_dirty_ratio_pct gauge\nordxml_bufpool_dirty_ratio_pct 25\n",
		"ordxml_wal_durable_lag 3\n",
		"# TYPE ordxml_query_latency_seconds histogram\n",
		"ordxml_query_latency_seconds_bucket{le=\"+Inf\"} 3\n",
		"ordxml_query_latency_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	// Structural checks over every line: the text format admits only
	// `# TYPE name kind` comments and `name[{le="..."}] value` samples, all
	// names prefixed ordxml_, bucket counts cumulative and capped by _count.
	var lastBucket, count int64 = -1, -1
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || !strings.HasPrefix(f[2], "ordxml_") {
				t.Fatalf("bad TYPE line %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad metric kind in %q", line)
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) != 2 || !strings.HasPrefix(f[0], "ordxml_") {
			t.Fatalf("bad sample line %q", line)
		}
		if _, err := strconv.ParseFloat(f[1], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if strings.Contains(f[0], "_bucket{") {
			v, _ := strconv.ParseInt(f[1], 10, 64)
			if v < lastBucket {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			lastBucket = v
		}
		if strings.HasSuffix(f[0], "_count") {
			count, _ = strconv.ParseInt(f[1], 10, 64)
		}
	}
	if count != 3 || lastBucket != 3 {
		t.Fatalf("histogram _count=%d +Inf bucket=%d, want 3/3", count, lastBucket)
	}

	// The buckets are cumulative: the last explicit bucket holds all three.
	hs := h.Snapshot()
	if len(hs.Buckets) == 0 || hs.Buckets[len(hs.Buckets)-1].Count != 3 {
		t.Fatalf("bucket snapshot = %+v", hs.Buckets)
	}
}

func TestWritePrometheusEmpty(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, NewRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty snapshot produced output: %q", b.String())
	}
}
