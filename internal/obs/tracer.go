package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the request-scoped tracing layer (observability v2). Unlike
// trace.go's flat per-operation stage Trace, the Tracer records a *tree* of
// spans with trace/span/parent IDs into a bounded in-memory ring buffer,
// safe for concurrent emission from parallel query workers, and exports the
// buffer as Chrome trace-event JSON loadable in Perfetto (chrome://tracing).
//
// The active-span handle is a *ActiveSpan; nil is the disabled state and
// every method is nil-safe, so call sites thread spans unconditionally:
//
//	ctx, sp := tracer.StartRoot(ctx, "xpath.query")
//	defer sp.End()
//	...
//	ctx2, child := obs.StartSpan(ctx, "plan")
//	child.End()
//
// When the tracer is disabled StartRoot returns (ctx, nil) untouched and the
// whole request pays one atomic load.

// DefaultTracerCapacity is the default bounded span-buffer size. At ~100
// bytes a record this is under 1 MiB resident.
const DefaultTracerCapacity = 8192

// Arg is one key/value annotation on a span. Val is an int64 or a string.
type Arg struct {
	Key string `json:"key"`
	Val any    `json:"val"`
}

// SpanRecord is one completed span (or instant event) in the trace buffer.
type SpanRecord struct {
	Trace   uint64        `json:"trace"`
	ID      uint64        `json:"id"`
	Parent  uint64        `json:"parent"` // 0 for roots
	Lane    uint64        `json:"lane"`   // rendering track; workers get their own
	Name    string        `json:"name"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"dur_ns"`
	Instant bool          `json:"instant,omitempty"`
	Args    []Arg         `json:"args,omitempty"`
}

// Tracer owns the bounded span buffer. All methods are safe for concurrent
// use. The zero value is unusable; call NewTracer.
type Tracer struct {
	enabled   atomic.Bool
	nextTrace atomic.Uint64
	nextSpan  atomic.Uint64
	dropped   atomic.Int64

	now func() time.Time // test hook; time.Now outside tests

	mu   sync.Mutex
	buf  []SpanRecord // ring: next is the slot to overwrite once full
	next int
	full bool
}

// NewTracer returns a disabled tracer with a bounded buffer of capacity
// span records (DefaultTracerCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCapacity
	}
	return &Tracer{
		now: time.Now,
		buf: make([]SpanRecord, 0, capacity),
	}
}

// SetEnabled turns span recording on or off. Disabling does not clear the
// buffer; use Reset.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether new root spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Capacity returns the span-buffer capacity.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return cap(t.buf)
}

// Dropped returns how many records were overwritten because the ring
// wrapped.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Reset discards all buffered records and the dropped count.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.next = 0
	t.full = false
	t.mu.Unlock()
	t.dropped.Store(0)
}

// record appends one completed record to the ring, overwriting the oldest
// once full.
func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	if !t.full && len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, r)
		if len(t.buf) == cap(t.buf) {
			t.full = true
		}
	} else {
		t.buf[t.next] = r
		t.next++
		if t.next == len(t.buf) {
			t.next = 0
		}
		t.dropped.Add(1)
	}
	t.mu.Unlock()
}

// Snapshot returns the buffered records, oldest first. The slice is a copy.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// ActiveSpan is a started, not-yet-ended span. A nil *ActiveSpan is the
// disabled state; every method is a nil check and nothing more.
type ActiveSpan struct {
	t     *Tracer
	name  string
	trace uint64
	id    uint64
	par   uint64
	lane  uint64
	start time.Time

	mu    sync.Mutex
	args  []Arg
	ended bool
}

// StartRoot begins a new trace rooted at name and returns ctx with the root
// span attached. When the tracer is nil or disabled it returns (ctx, nil).
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if t == nil || !t.enabled.Load() {
		return ctx, nil
	}
	id := t.nextSpan.Add(1)
	sp := &ActiveSpan{
		t:     t,
		name:  name,
		trace: t.nextTrace.Add(1),
		id:    id,
		lane:  id,
		start: t.now(),
	}
	return ContextWith(ctx, sp), sp
}

// StartChild begins a child span on the same lane. Nil-safe.
func (s *ActiveSpan) StartChild(name string) *ActiveSpan {
	if s == nil {
		return nil
	}
	return &ActiveSpan{
		t:     s.t,
		name:  name,
		trace: s.trace,
		id:    s.t.nextSpan.Add(1),
		par:   s.id,
		lane:  s.lane,
		start: s.t.now(),
	}
}

// StartWorker begins a child span on a fresh lane — one per parallel worker,
// so overlapping worker spans render on separate tracks in Perfetto.
func (s *ActiveSpan) StartWorker(name string, worker int) *ActiveSpan {
	if s == nil {
		return nil
	}
	id := s.t.nextSpan.Add(1)
	w := &ActiveSpan{
		t:     s.t,
		name:  name,
		trace: s.trace,
		id:    id,
		par:   s.id,
		lane:  id,
		start: s.t.now(),
	}
	w.Arg("worker", int64(worker))
	return w
}

// MarkStart resets the span's start time to now. Operator spans are
// allocated at plan-build time but should measure Open→Close; the trace
// decorator calls this once at Open. Nil-safe.
func (s *ActiveSpan) MarkStart() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.start = s.t.now()
	s.mu.Unlock()
}

// Arg attaches an integer annotation. Nil-safe; returns s for chaining.
func (s *ActiveSpan) Arg(key string, v int64) *ActiveSpan {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.args = append(s.args, Arg{Key: key, Val: v})
	s.mu.Unlock()
	return s
}

// ArgStr attaches a string annotation. Nil-safe; returns s for chaining.
func (s *ActiveSpan) ArgStr(key, v string) *ActiveSpan {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.args = append(s.args, Arg{Key: key, Val: v})
	s.mu.Unlock()
	return s
}

// Event records an instant (zero-duration) child event, e.g. a per-statement
// buffer-pool delta. Nil-safe.
func (s *ActiveSpan) Event(name string, args ...Arg) {
	if s == nil {
		return
	}
	s.t.record(SpanRecord{
		Trace:   s.trace,
		ID:      s.t.nextSpan.Add(1),
		Parent:  s.id,
		Lane:    s.lane,
		Name:    name,
		Start:   s.t.now(),
		Instant: true,
		Args:    args,
	})
}

// End completes the span and commits it to the trace buffer. Ending twice
// is a no-op. Nil-safe.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	args := s.args
	start := s.start
	s.mu.Unlock()
	s.t.record(SpanRecord{
		Trace:  s.trace,
		ID:     s.id,
		Parent: s.par,
		Lane:   s.lane,
		Name:   s.name,
		Start:  start,
		Dur:    s.t.now().Sub(start),
		Args:   args,
	})
}

// TraceID returns the span's trace ID (0 for nil).
func (s *ActiveSpan) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.trace
}

// SpanID returns the span's ID (0 for nil).
func (s *ActiveSpan) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// ctxKey is the context key for the ambient span.
type ctxKey struct{}

// ContextWith returns ctx carrying sp. A nil span returns ctx unchanged.
func ContextWith(ctx context.Context, sp *ActiveSpan) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the ambient span, or nil if none.
func FromContext(ctx context.Context) *ActiveSpan {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*ActiveSpan)
	return sp
}

// StartSpan begins a child of the ambient span in ctx and returns ctx with
// the child attached. With no ambient span it returns (ctx, nil).
func StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.StartChild(name)
	return ContextWith(ctx, sp), sp
}

// chromeEvent is one Chrome trace-event JSON object. ts and dur are in
// microseconds; pid groups a trace, tid is the rendering lane.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   uint64         `json:"pid"`
	Tid   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the buffered spans as Chrome trace-event JSON
// ({"traceEvents":[...]}), loadable in Perfetto and chrome://tracing.
// Span nesting is positional (complete "X" events on a pid/tid track);
// the span tree is also explicit via args.span/args.parent.
func (t *Tracer) WriteChrome(w io.Writer) error {
	recs := t.Snapshot()
	events := make([]chromeEvent, 0, len(recs))
	for _, r := range recs {
		ev := chromeEvent{
			Name: r.Name,
			Cat:  "ordxml",
			Ph:   "X",
			Ts:   float64(r.Start.UnixNano()) / 1e3,
			Dur:  float64(r.Dur) / 1e3,
			Pid:  r.Trace,
			Tid:  r.Lane,
			Args: map[string]any{"span": r.ID, "parent": r.Parent},
		}
		if r.Instant {
			ev.Ph = "i"
			ev.Dur = 0
			ev.Scope = "t"
		}
		for _, a := range r.Args {
			ev.Args[a.Key] = a.Val
		}
		events = append(events, ev)
	}
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// DumpChrome writes the Chrome trace to a file-like destination and reports
// the record count, for `\trace dump <file>`.
func (t *Tracer) DumpChrome(w io.Writer) (int, error) {
	n := len(t.Snapshot())
	if err := t.WriteChrome(w); err != nil {
		return 0, fmt.Errorf("write chrome trace: %w", err)
	}
	return n, nil
}
