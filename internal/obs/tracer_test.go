package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"sync"
	"testing"
	"time"
)

// fakeClock installs a deterministic clock on the tracer: each now() call
// advances by one millisecond from the Unix epoch.
func fakeClock(t *Tracer) {
	var clk time.Time = time.Unix(0, 0).UTC()
	t.now = func() time.Time {
		clk = clk.Add(time.Millisecond)
		return clk
	}
}

func TestTracerDisabledIsFree(t *testing.T) {
	tr := NewTracer(16)
	ctx, sp := tr.StartRoot(context.Background(), "root")
	if sp != nil {
		t.Fatal("disabled tracer returned a live span")
	}
	if got := FromContext(ctx); got != nil {
		t.Fatal("disabled StartRoot attached a span to ctx")
	}
	// The whole nil-safe method surface must be a no-op.
	sp.MarkStart()
	sp.Arg("k", 1).ArgStr("s", "v").End()
	sp.Event("e")
	sp.End()
	if _, child := StartSpan(ctx, "child"); child != nil {
		t.Fatal("StartSpan without ambient span returned a live span")
	}
	if n := len(tr.Snapshot()); n != 0 {
		t.Fatalf("disabled tracer recorded %d spans", n)
	}
	if sp.TraceID() != 0 || sp.SpanID() != 0 {
		t.Fatal("nil span has non-zero IDs")
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() || tr.Capacity() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer not inert")
	}
	tr.SetEnabled(true)
	tr.Reset()
	_, sp := tr.StartRoot(context.Background(), "root")
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}
}

func TestSpanTreeRecording(t *testing.T) {
	tr := NewTracer(16)
	fakeClock(tr)
	tr.SetEnabled(true)

	ctx, root := tr.StartRoot(context.Background(), "root") // start 1ms
	if root == nil {
		t.Fatal("enabled tracer returned nil root")
	}
	if FromContext(ctx) != root {
		t.Fatal("root not attached to ctx")
	}
	ctx2, child := StartSpan(ctx, "child") // start 2ms
	if child == nil || FromContext(ctx2) != child {
		t.Fatal("child not attached to ctx")
	}
	child.Arg("rows", 7)
	child.End() // end 3ms, dur 1ms
	w := root.StartWorker("worker", 2) // start 4ms
	w.End()                            // end 5ms
	root.Event("note", Arg{Key: "k", Val: "v"}) // 6ms
	root.End() // end 7ms, dur 6ms
	root.End() // double End is a no-op

	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	rr, cr, wr, er := byName["root"], byName["child"], byName["worker"], byName["note"]
	if rr.Parent != 0 || rr.Trace == 0 {
		t.Fatalf("root record = %+v", rr)
	}
	if cr.Parent != rr.ID || cr.Trace != rr.Trace || cr.Lane != rr.Lane {
		t.Fatalf("child does not nest under root: %+v vs %+v", cr, rr)
	}
	if cr.Dur != time.Millisecond {
		t.Fatalf("child dur = %v, want 1ms", cr.Dur)
	}
	if wr.Parent != rr.ID || wr.Lane == rr.Lane {
		t.Fatalf("worker should get its own lane: %+v", wr)
	}
	if len(wr.Args) != 1 || wr.Args[0].Key != "worker" || wr.Args[0].Val != int64(2) {
		t.Fatalf("worker args = %v", wr.Args)
	}
	if !er.Instant || er.Parent != rr.ID {
		t.Fatalf("event record = %+v", er)
	}
	if rr.Dur != 6*time.Millisecond {
		t.Fatalf("root dur = %v, want 6ms", rr.Dur)
	}
}

func TestMarkStart(t *testing.T) {
	tr := NewTracer(4)
	fakeClock(tr)
	tr.SetEnabled(true)
	_, sp := tr.StartRoot(context.Background(), "op") // 1ms
	sp.MarkStart()                                    // 2ms
	sp.End()                                          // 3ms
	recs := tr.Snapshot()
	if len(recs) != 1 || recs[0].Dur != time.Millisecond {
		t.Fatalf("MarkStart did not reset the clock: %+v", recs)
	}
}

func TestRingWrapAndReset(t *testing.T) {
	tr := NewTracer(4)
	tr.SetEnabled(true)
	for i := 0; i < 6; i++ {
		_, sp := tr.StartRoot(context.Background(), "s")
		sp.Arg("i", int64(i))
		sp.End()
	}
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("buffered %d, want capacity 4", len(recs))
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	// Oldest-first: the two earliest records were overwritten.
	if recs[0].Args[0].Val != int64(2) || recs[3].Args[0].Val != int64(5) {
		t.Fatalf("snapshot order wrong: %v ... %v", recs[0].Args, recs[3].Args)
	}
	if tr.Capacity() != 4 {
		t.Fatalf("capacity = %d", tr.Capacity())
	}
	tr.Reset()
	if len(tr.Snapshot()) != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset did not clear the buffer")
	}
}

// chromeGolden is the exact Chrome trace-event JSON for the deterministic
// span tree below (fake clock, fresh tracer so IDs start at 1).
const chromeGolden = `{
 "traceEvents": [
  {
   "name": "child",
   "cat": "ordxml",
   "ph": "X",
   "ts": 2000,
   "dur": 1000,
   "pid": 1,
   "tid": 1,
   "args": {
    "parent": 1,
    "rows": 7,
    "span": 2
   }
  },
  {
   "name": "note",
   "cat": "ordxml",
   "ph": "i",
   "ts": 4000,
   "pid": 1,
   "tid": 1,
   "s": "t",
   "args": {
    "parent": 1,
    "span": 3
   }
  },
  {
   "name": "root",
   "cat": "ordxml",
   "ph": "X",
   "ts": 1000,
   "dur": 4000,
   "pid": 1,
   "tid": 1,
   "args": {
    "parent": 0,
    "span": 1
   }
  }
 ],
 "displayTimeUnit": "ms"
}
`

func TestWriteChromeGolden(t *testing.T) {
	tr := NewTracer(16)
	fakeClock(tr)
	tr.SetEnabled(true)

	_, root := tr.StartRoot(context.Background(), "root") // 1ms
	child := root.StartChild("child")                     // 2ms
	child.Arg("rows", 7)
	child.End()        // 3ms
	root.Event("note") // 4ms
	root.End()         // 5ms

	var buf bytes.Buffer
	n, err := tr.DumpChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("DumpChrome count = %d, want 3", n)
	}
	if got := buf.String(); got != chromeGolden {
		t.Errorf("chrome JSON mismatch\n--- got ---\n%s\n--- want ---\n%s", got, chromeGolden)
	}

	// The output must be valid JSON with the documented envelope.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("traceEvents = %d entries", len(doc.TraceEvents))
	}
}

func TestConcurrentEmission(t *testing.T) {
	tr := NewTracer(256)
	tr.SetEnabled(true)
	const workers, perWorker = 8, 50

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				ctx, root := tr.StartRoot(context.Background(), "req")
				_, child := StartSpan(ctx, "stage")
				child.Arg("j", int64(j)).End()
				w := root.StartWorker("w", i)
				w.Event("tick")
				w.End()
				root.End()
			}
		}(i)
	}
	// Concurrent readers: Snapshot and WriteChrome while spans are emitted.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			tr.Snapshot()
			if err := tr.WriteChrome(io.Discard); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	// 4 records per iteration; buffer + dropped must account for all of them.
	total := int64(len(tr.Snapshot())) + tr.Dropped()
	if want := int64(workers * perWorker * 4); total != want {
		t.Fatalf("accounted records = %d, want %d", total, want)
	}
}
