package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("q")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("q") != c {
		t.Fatal("Counter not idempotent")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 90 fast observations, 10 slow ones.
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 > 100*time.Microsecond {
		t.Fatalf("p50 = %v, want <= 100µs", s.P50)
	}
	if s.P99 < time.Millisecond {
		t.Fatalf("p99 = %v, want >= 1ms", s.P99)
	}
	if s.Max != 5*time.Millisecond {
		t.Fatalf("max = %v", s.Max)
	}
	if m := s.Mean(); m < 100*time.Microsecond || m > 2*time.Millisecond {
		t.Fatalf("mean = %v out of range", m)
	}
}

func TestHistogramEdges(t *testing.T) {
	h := &Histogram{}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	h.Observe(-time.Second) // clamped to zero
	h.Observe(3 * time.Hour)
	s := h.Snapshot()
	if s.Count != 2 || s.Max != 3*time.Hour {
		t.Fatalf("snapshot = %+v", s)
	}
	// The catch-all bucket's estimate is clamped to the observed max.
	if s.P99 > 3*time.Hour {
		t.Fatalf("p99 = %v exceeds max", s.P99)
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(9)
	r.Histogram("lat").Observe(time.Millisecond)
	r.RegisterFunc("ext", func() int64 { return 42 })
	s := r.Snapshot()
	if s.Counters["a"] != 3 || s.Gauges["b"] != 9 || s.Gauges["ext"] != 42 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Histograms["lat"].Count != 1 {
		t.Fatalf("histogram snapshot = %+v", s.Histograms["lat"])
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if got := s.CounterNames(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("counter names = %v", got)
	}
}

// TestConcurrentRegistry exercises the registry under -race: concurrent
// get-or-create, updates and snapshots.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

// TestDisabledTraceZeroAlloc is the tracing-disabled fast-path guard: a span
// on a nil trace must not allocate (and must not read the clock, but that is
// not observable here).
func TestDisabledTraceZeroAlloc(t *testing.T) {
	var tr *Trace
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("stage")
		sp.End()
		tr.Add("stage", time.Microsecond)
	}); n != 0 {
		t.Fatalf("disabled trace allocates %v per span, want 0", n)
	}
}

// TestMetricsZeroAlloc guards the per-statement metric updates: counter,
// gauge and histogram writes must never allocate.
func TestMetricsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		h.Observe(17 * time.Microsecond)
	}); n != 0 {
		t.Fatalf("metric updates allocate %v per statement, want 0", n)
	}
}

func TestTraceStages(t *testing.T) {
	tr := NewTrace()
	sp := tr.Start("a")
	sp.End()
	tr.Add("a", 2*time.Millisecond)
	tr.Add("b", time.Millisecond)
	st := tr.Stages()
	if len(st) != 2 || st[0].Name != "a" || st[1].Name != "b" {
		t.Fatalf("stages = %+v", st)
	}
	if st[0].Count != 2 {
		t.Fatalf("stage a count = %d, want 2", st[0].Count)
	}
	if tr.Total() < 3*time.Millisecond {
		t.Fatalf("total = %v", tr.Total())
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3) // never lowers
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge = %d, want 9", got)
	}
	// Concurrent high-water marking converges on the maximum.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := int64(0); v <= 1000; v++ {
				g.SetMax(v*8 + int64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := g.Value(); got != 8007 {
		t.Fatalf("gauge = %d, want 8007", got)
	}
}
