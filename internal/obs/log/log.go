// Package log is the engine's structured, leveled logging layer: key-value
// records, a pluggable sink, and per-key rate limiting, with no dependencies
// beyond the standard library. It replaces the silent paths and ad-hoc
// prints in WAL recovery, checkpointing, eviction pressure, slow-query
// detection and integrity checking.
//
// A Logger is safe for concurrent use. A nil *Logger is a no-op, so
// components hold one unconditionally. Records flow to a Sink; the built-in
// sinks are TextSink (one line per record, logfmt-ish) and BufferSink (a
// bounded ring, used by tests and debug endpoints).
package log

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders record severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the canonical upper-case level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return "LEVEL(" + strconv.Itoa(int(l)) + ")"
	}
}

// F is one structured field. Values are formatted by the sink.
type F struct {
	Key string
	Val any
}

// Int builds an integer field.
func Int(key string, v int64) F { return F{Key: key, Val: v} }

// Str builds a string field.
func Str(key, v string) F { return F{Key: key, Val: v} }

// Dur builds a duration field.
func Dur(key string, v time.Duration) F { return F{Key: key, Val: v} }

// Err builds an "err" field from an error (nil-safe).
func Err(e error) F {
	if e == nil {
		return F{Key: "err", Val: ""}
	}
	return F{Key: "err", Val: e.Error()}
}

// Record is one log entry.
type Record struct {
	Time   time.Time
	Level  Level
	Msg    string
	Fields []F
}

// Sink receives completed records. Write must be safe for concurrent use.
type Sink interface {
	Write(r Record)
}

// Logger filters by level, applies rate limits, and forwards to the sink.
type Logger struct {
	level atomic.Int32
	sink  atomic.Value // sinkBox
	now   func() time.Time

	mu  sync.Mutex
	lim map[string]*limitState
}

// sinkBox wraps the Sink interface so atomic.Value tolerates differing
// concrete types across SetSink calls.
type sinkBox struct{ s Sink }

// limitState tracks one rate-limit key.
type limitState struct {
	last       time.Time
	suppressed int64
}

// New returns a logger writing records at or above level to sink.
func New(sink Sink, level Level) *Logger {
	l := &Logger{now: time.Now, lim: map[string]*limitState{}}
	l.level.Store(int32(level))
	l.sink.Store(sinkBox{s: sink})
	return l
}

var defaultLogger atomic.Pointer[Logger]

// Default returns the shared process logger: stderr text at Warn. Components
// that are not handed a logger explicitly fall back to it.
func Default() *Logger {
	if l := defaultLogger.Load(); l != nil {
		return l
	}
	l := New(NewTextSink(os.Stderr), LevelWarn)
	if defaultLogger.CompareAndSwap(nil, l) {
		return l
	}
	return defaultLogger.Load()
}

// SetLevel changes the minimum emitted level.
func (l *Logger) SetLevel(level Level) {
	if l != nil {
		l.level.Store(int32(level))
	}
}

// SetSink replaces the sink.
func (l *Logger) SetSink(s Sink) {
	if l != nil {
		l.sink.Store(sinkBox{s: s})
	}
}

// Enabled reports whether records at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.level.Load()
}

// Debug emits a debug record.
func (l *Logger) Debug(msg string, fields ...F) { l.emit(LevelDebug, msg, fields) }

// Info emits an info record.
func (l *Logger) Info(msg string, fields ...F) { l.emit(LevelInfo, msg, fields) }

// Warn emits a warning record.
func (l *Logger) Warn(msg string, fields ...F) { l.emit(LevelWarn, msg, fields) }

// Error emits an error record.
func (l *Logger) Error(msg string, fields ...F) { l.emit(LevelError, msg, fields) }

func (l *Logger) emit(level Level, msg string, fields []F) {
	if !l.Enabled(level) {
		return
	}
	box, _ := l.sink.Load().(sinkBox)
	if box.s == nil {
		return
	}
	box.s.Write(Record{Time: l.now(), Level: level, Msg: msg, Fields: fields})
}

// Every emits at most one record per `every` for the given key; calls in
// between are counted and surfaced as a `suppressed=N` field on the next
// emitted record. High-frequency warn paths (eviction pressure, slow
// queries) use this so a storm costs one line per window.
func (l *Logger) Every(key string, every time.Duration, level Level, msg string, fields ...F) {
	if !l.Enabled(level) {
		return
	}
	now := l.now()
	l.mu.Lock()
	st, ok := l.lim[key]
	if !ok {
		st = &limitState{}
		l.lim[key] = st
	}
	if !st.last.IsZero() && now.Sub(st.last) < every {
		st.suppressed++
		l.mu.Unlock()
		return
	}
	st.last = now
	suppressed := st.suppressed
	st.suppressed = 0
	l.mu.Unlock()
	if suppressed > 0 {
		fields = append(fields, Int("suppressed", suppressed))
	}
	l.emit(level, msg, fields)
}

// TextSink writes one line per record: RFC3339 time, level, message, then
// key=value fields in emission order. Writes are serialized.
type TextSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextSink returns a TextSink writing to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Write formats and writes one record.
func (s *TextSink) Write(r Record) {
	buf := make([]byte, 0, 128)
	buf = r.Time.UTC().AppendFormat(buf, time.RFC3339Nano)
	buf = append(buf, ' ')
	buf = append(buf, r.Level.String()...)
	buf = append(buf, ' ')
	buf = strconv.AppendQuote(buf, r.Msg)
	for _, f := range r.Fields {
		buf = append(buf, ' ')
		buf = append(buf, f.Key...)
		buf = append(buf, '=')
		buf = appendValue(buf, f.Val)
	}
	buf = append(buf, '\n')
	s.mu.Lock()
	_, _ = s.w.Write(buf)
	s.mu.Unlock()
}

// appendValue formats one field value.
func appendValue(buf []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return strconv.AppendQuote(buf, x)
	case int64:
		return strconv.AppendInt(buf, x, 10)
	case int:
		return strconv.AppendInt(buf, int64(x), 10)
	case uint64:
		return strconv.AppendUint(buf, x, 10)
	case bool:
		return strconv.AppendBool(buf, x)
	case time.Duration:
		return append(buf, x.String()...)
	case float64:
		return strconv.AppendFloat(buf, x, 'g', -1, 64)
	default:
		return strconv.AppendQuote(buf, fmt.Sprint(x))
	}
}

// BufferSink keeps the last capacity records in memory — the test harness
// and debug endpoints read them back with Snapshot.
type BufferSink struct {
	mu   sync.Mutex
	buf  []Record
	next int
	full bool
}

// NewBufferSink returns a ring sink holding capacity records (64 minimum).
func NewBufferSink(capacity int) *BufferSink {
	if capacity < 64 {
		capacity = 64
	}
	return &BufferSink{buf: make([]Record, 0, capacity)}
}

// Write appends one record, overwriting the oldest once full.
func (s *BufferSink) Write(r Record) {
	s.mu.Lock()
	if !s.full && len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, r)
		if len(s.buf) == cap(s.buf) {
			s.full = true
		}
	} else {
		s.buf[s.next] = r
		s.next++
		if s.next == len(s.buf) {
			s.next = 0
		}
	}
	s.mu.Unlock()
}

// Snapshot returns the buffered records, oldest first.
func (s *BufferSink) Snapshot() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.buf))
	if s.full {
		out = append(out, s.buf[s.next:]...)
		out = append(out, s.buf[:s.next]...)
	} else {
		out = append(out, s.buf...)
	}
	return out
}

// MultiSink fans records out to several sinks.
type MultiSink []Sink

// Write forwards r to every sink.
func (m MultiSink) Write(r Record) {
	for _, s := range m {
		if s != nil {
			s.Write(r)
		}
	}
}

// SortFields orders a record's fields by key (tests compare field sets
// without caring about emission order).
func SortFields(fs []F) []F {
	out := append([]F(nil), fs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
