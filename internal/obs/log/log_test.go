package log

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock pins the logger's clock to a controllable instant.
func fakeClock(l *Logger, at *time.Time) {
	l.now = func() time.Time { return *at }
}

func TestNilLoggerIsNoop(t *testing.T) {
	var l *Logger
	if l.Enabled(LevelError) {
		t.Fatal("nil logger enabled")
	}
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e", Err(errors.New("x")))
	l.Every("k", time.Second, LevelWarn, "rate")
	l.SetLevel(LevelDebug)
	l.SetSink(NewBufferSink(64))
}

func TestLevelFiltering(t *testing.T) {
	sink := NewBufferSink(64)
	l := New(sink, LevelWarn)
	l.Debug("nope")
	l.Info("nope")
	l.Warn("yes")
	l.Error("also")
	got := sink.Snapshot()
	if len(got) != 2 || got[0].Msg != "yes" || got[1].Msg != "also" {
		t.Fatalf("records = %+v", got)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelWarn) {
		t.Fatal("Enabled disagrees with level")
	}
	l.SetLevel(LevelDebug)
	l.Debug("now")
	if got := sink.Snapshot(); len(got) != 3 || got[2].Msg != "now" {
		t.Fatalf("after SetLevel: %+v", got)
	}
}

func TestRecordOrderingAndFields(t *testing.T) {
	sink := NewBufferSink(64)
	l := New(sink, LevelDebug)
	for i := 0; i < 5; i++ {
		l.Info("m", Int("i", int64(i)))
	}
	got := sink.Snapshot()
	if len(got) != 5 {
		t.Fatalf("got %d records", len(got))
	}
	for i, r := range got {
		if r.Fields[0].Val != int64(i) {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}
	// Fields keep emission order; SortFields normalizes a copy.
	l.Info("kv", Str("b", "2"), Str("a", "1"))
	r := sink.Snapshot()[5]
	if r.Fields[0].Key != "b" {
		t.Fatalf("emission order lost: %+v", r.Fields)
	}
	sorted := SortFields(r.Fields)
	if sorted[0].Key != "a" || r.Fields[0].Key != "b" {
		t.Fatalf("SortFields wrong or not a copy: %v / %v", sorted, r.Fields)
	}
}

func TestEveryRateLimit(t *testing.T) {
	sink := NewBufferSink(64)
	l := New(sink, LevelDebug)
	at := time.Unix(100, 0)
	fakeClock(l, &at)

	l.Every("evict", time.Second, LevelWarn, "pressure", Int("n", 1))
	for i := 0; i < 4; i++ {
		l.Every("evict", time.Second, LevelWarn, "pressure", Int("n", int64(i)))
	}
	// A different key is limited independently.
	l.Every("slow", time.Second, LevelWarn, "slow query")

	at = at.Add(1500 * time.Millisecond)
	l.Every("evict", time.Second, LevelWarn, "pressure", Int("n", 9))

	got := sink.Snapshot()
	if len(got) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(got), got)
	}
	if got[0].Msg != "pressure" || got[1].Msg != "slow query" {
		t.Fatalf("unexpected records: %+v", got)
	}
	// The post-window record carries the suppressed count from the storm.
	last := got[2]
	found := false
	for _, f := range last.Fields {
		if f.Key == "suppressed" {
			found = true
			if f.Val != int64(4) {
				t.Fatalf("suppressed = %v, want 4", f.Val)
			}
		}
	}
	if !found {
		t.Fatalf("no suppressed field on %+v", last)
	}

	// Below the level threshold, Every neither emits nor counts.
	l.SetLevel(LevelError)
	at = at.Add(2 * time.Second)
	l.Every("evict", time.Second, LevelWarn, "pressure")
	if len(sink.Snapshot()) != 3 {
		t.Fatal("Every emitted below the level threshold")
	}
}

func TestTextSinkFormat(t *testing.T) {
	var buf bytes.Buffer
	l := New(NewTextSink(&buf), LevelDebug)
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	fakeClock(l, &at)
	l.Warn("wal: torn tail",
		Str("path", "wal.log"),
		Int("torn_bytes", 17),
		Dur("elapsed", 1500*time.Millisecond),
		Err(errors.New("short read")),
		F{Key: "ok", Val: true},
		F{Key: "ratio", Val: 0.5},
		F{Key: "lsn", Val: uint64(9)},
		F{Key: "n", Val: int(3)},
		F{Key: "other", Val: []int{1}},
	)
	want := `2026-08-08T12:00:00Z WARN "wal: torn tail" path="wal.log" torn_bytes=17 elapsed=1.5s err="short read" ok=true ratio=0.5 lsn=9 n=3 other="[1]"` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("line mismatch\n got: %q\nwant: %q", got, want)
	}
}

func TestErrNil(t *testing.T) {
	if f := Err(nil); f.Key != "err" || f.Val != "" {
		t.Fatalf("Err(nil) = %+v", f)
	}
}

func TestBufferSinkWrap(t *testing.T) {
	s := NewBufferSink(10) // clamped to the 64 minimum
	for i := 0; i < 70; i++ {
		s.Write(Record{Msg: fmt.Sprint(i)})
	}
	got := s.Snapshot()
	if len(got) != 64 {
		t.Fatalf("buffered %d, want 64", len(got))
	}
	if got[0].Msg != "6" || got[63].Msg != "69" {
		t.Fatalf("ring order wrong: %s ... %s", got[0].Msg, got[63].Msg)
	}
}

func TestMultiSink(t *testing.T) {
	a, b := NewBufferSink(64), NewBufferSink(64)
	l := New(MultiSink{a, nil, b}, LevelDebug)
	l.Info("fanout")
	if len(a.Snapshot()) != 1 || len(b.Snapshot()) != 1 {
		t.Fatal("MultiSink did not fan out")
	}
}

func TestDefaultLogger(t *testing.T) {
	d := Default()
	if d == nil {
		t.Fatal("Default() = nil")
	}
	if Default() != d {
		t.Fatal("Default() not stable")
	}
	if d.Enabled(LevelInfo) {
		t.Fatal("default logger should start at Warn")
	}
}

func TestLevelString(t *testing.T) {
	for lv, want := range map[Level]string{
		LevelDebug: "DEBUG", LevelInfo: "INFO", LevelWarn: "WARN", LevelError: "ERROR", Level(9): "LEVEL(9)",
	} {
		if got := lv.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", lv, got, want)
		}
	}
}

func TestConcurrentLogging(t *testing.T) {
	sink := NewBufferSink(4096)
	l := New(sink, LevelDebug)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Info("m", Int("g", int64(i)))
				l.Every("shared", time.Microsecond, LevelWarn, "limited")
			}
		}(i)
	}
	wg.Wait()
	for _, r := range sink.Snapshot() {
		if r.Msg != "m" && r.Msg != "limited" {
			t.Fatalf("unexpected record %+v", r)
		}
	}
	if n := len(sink.Snapshot()); n < 800 {
		t.Fatalf("lost records: %d < 800", n)
	}
}
