package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4) for GET /debug/metrics.prom. Metric names are the
// registry names with every non-[a-zA-Z0-9_:] character mapped to '_' and
// an "ordxml_" prefix; histograms expose cumulative buckets in seconds.

// promName sanitizes a registry metric name into a Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 7)
	b.WriteString("ordxml_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus expects.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. Counters become `counter`, gauges `gauge`, histograms `histogram`
// with cumulative le buckets in seconds plus _sum and _count.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, name := range s.CounterNames() {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range s.GaugeNames() {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range s.HistogramNames() {
		h := s.Histograms[name]
		pn := promName(name) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := promFloat(b.Upper.Seconds())
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", pn, promFloat(h.Sum.Seconds())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
