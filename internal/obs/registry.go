// Package obs is the engine's dependency-free observability layer: a metrics
// registry of atomic counters, gauges and fixed-bucket latency histograms,
// plus a lightweight span/trace API for per-query stage breakdowns.
//
// Design constraints, in order:
//
//  1. Zero allocations on the hot path. Counter.Add, Gauge.Set and
//     Histogram.Observe are single atomic operations; a disabled Trace costs
//     two nil checks and no allocation (see trace.go).
//  2. No dependencies beyond the standard library, so storage packages
//     (heap, btree) and the SQL engine can all share one registry without
//     import cycles.
//  3. Snapshots are plain maps/structs that marshal to JSON directly, which
//     is what the debug HTTP endpoint and xmlbench -stats emit.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	olog "ordxml/internal/obs/log"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v is larger than the current value —
// a lock-free high-water mark (e.g. the WAL's last assigned LSN under
// concurrent appenders).
func (g *Gauge) SetMax(v int64) {
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of histogram buckets. Bucket i counts durations
// in [2^(i-1), 2^i) microseconds (bucket 0 is < 1µs); the last bucket is a
// catch-all, so the covered range ends around 2^(histBuckets-2)µs ≈ 9 min.
const histBuckets = 30

// Histogram is a fixed-bucket latency histogram: exponential microsecond
// buckets plus count, sum and max. Observing is one atomic add per field
// touched and never allocates.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us) // 0 for <1µs, k for [2^(k-1), 2^k) µs
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) time.Duration {
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		old := h.max.Load()
		if int64(d) <= old || h.max.CompareAndSwap(old, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the upper edge of the bucket holding the q-th observation, clamped to the
// maximum observed value.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	est := time.Duration(h.max.Load())
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			est = bucketUpper(i)
			break
		}
	}
	if m := time.Duration(h.max.Load()); est > m {
		est = m
	}
	return est
}

// BucketCount is one cumulative histogram bucket: Count observations were
// <= Upper. The Prometheus exposition endpoint renders these as
// `_bucket{le=...}` samples.
type BucketCount struct {
	Upper time.Duration `json:"le_ns"`
	Count int64         `json:"count"`
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Max   time.Duration `json:"max_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	// Buckets holds cumulative counts up to the last non-empty bucket
	// (the +Inf bucket is implicit: it equals Count).
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Snapshot summarizes the histogram, including cumulative bucket counts up
// to the last non-empty bucket.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		Max:   time.Duration(h.max.Load()),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	last := -1
	var raw [histBuckets]int64
	for i := 0; i < histBuckets; i++ {
		raw[i] = h.buckets[i].Load()
		if raw[i] > 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = make([]BucketCount, last+1)
		var cum int64
		for i := 0; i <= last; i++ {
			cum += raw[i]
			s.Buckets[i] = BucketCount{Upper: bucketUpper(i), Count: cum}
		}
	}
	return s
}

// Registry is a named collection of metrics. Lookup (get-or-create) takes a
// mutex; the returned metric values are lock-free, so callers hold them in
// struct fields and never look up on the hot path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
	logger   atomic.Pointer[olog.Logger]
}

// SetLogger attaches a structured logger to the registry. Components that
// already receive the registry (WAL, buffer pool, SQL engine) reach the
// logger through it instead of growing their constructor signatures.
func (r *Registry) SetLogger(l *olog.Logger) {
	if r != nil {
		r.logger.Store(l)
	}
}

// Log returns the registry's logger, falling back to the process default
// (stderr text at Warn). Never nil-derefs: a nil registry returns the
// default logger.
func (r *Registry) Log() *olog.Logger {
	if r != nil {
		if l := r.logger.Load(); l != nil {
			return l
		}
	}
	return olog.Default()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() int64{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers a read-only gauge backed by fn (e.g. an external
// atomic counter). The function is evaluated at snapshot time.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot is a point-in-time copy of every metric in a registry. The maps
// are freshly allocated and safe to retain; the whole value marshals to JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric. Func gauges are evaluated outside the
// registry lock so they may themselves read other metrics.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.funcs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Snapshot()
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for n, fn := range r.funcs {
		funcs[n] = fn
	}
	r.mu.Unlock()
	for n, fn := range funcs {
		s.Gauges[n] = fn()
	}
	return s
}

// CounterNames returns the registered counter names, sorted (for stable
// text rendering).
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns the gauge names, sorted.
func (s Snapshot) GaugeNames() []string {
	names := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the histogram names, sorted.
func (s Snapshot) HistogramNames() []string {
	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
