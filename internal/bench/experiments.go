package bench

import (
	"fmt"

	"ordxml"
	"ordxml/internal/xmltree"
)

// RunE1 measures storage cost per encoding across document sizes
// (reproduces the paper's storage comparison).
func RunE1(sizes []int) (Table, error) {
	t := Table{
		Title:  "E1: storage cost by encoding",
		Note:   "bytes are live heap bytes of the node table (indexes excluded)",
		Header: []string{"items/region", "nodes", "encoding", "rows", "bytes", "bytes/node"},
	}
	for _, size := range sizes {
		doc := CatalogDoc(size)
		nodes := doc.Size()
		for _, cfg := range EncodingsWithText() {
			s, _, err := NewStore(cfg, doc)
			if err != nil {
				return t, err
			}
			st := s.Storage()
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(size), fmt.Sprint(nodes), cfg.Name,
				fmt.Sprint(st.Rows), fmt.Sprint(st.HeapBytes),
				fmt.Sprintf("%.1f", float64(st.HeapBytes)/float64(nodes)),
			})
		}
	}
	return t, nil
}

// RunE2 measures bulk-load (shred) time per encoding across sizes.
func RunE2(sizes []int, reps int) (Table, error) {
	t := Table{
		Title:  "E2: bulk load (shred) time",
		Header: []string{"items/region", "nodes", "encoding", "ms/load", "us/node"},
	}
	for _, size := range sizes {
		doc := CatalogDoc(size)
		xml := doc.String()
		nodes := doc.Size()
		for _, cfg := range Encodings() {
			d, err := timeOp(reps, func() error {
				s, err := ordxml.Open(cfg.Opts)
				if err != nil {
					return err
				}
				_, err = s.LoadString("d", xml)
				return err
			})
			if err != nil {
				return t, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(size), fmt.Sprint(nodes), cfg.Name,
				fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e6),
				fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e3/float64(nodes)),
			})
		}
	}
	return t, nil
}

// RunE3 runs the ordered query suite per encoding, reporting wall time and
// logical work (index probes + rows scanned).
func RunE3(itemsPerRegion, reps int) (Table, error) {
	t := Table{
		Title: "E3: ordered query suite",
		Note: fmt.Sprintf("catalog with %d items/region; work = index probes + rows scanned per query",
			itemsPerRegion),
		Header: []string{"query", "feature", "encoding", "results", "us/query", "work"},
	}
	doc := CatalogDoc(itemsPerRegion)
	type env struct {
		cfg Config
		s   *ordxml.Store
		id  ordxml.DocID
	}
	var envs []env
	for _, cfg := range Encodings() {
		s, id, err := NewStore(cfg, doc)
		if err != nil {
			return t, err
		}
		envs = append(envs, env{cfg, s, id})
	}
	for _, q := range QuerySuite(itemsPerRegion) {
		for _, e := range envs {
			res, err := e.s.Query(e.id, q.XPath)
			if err != nil {
				return t, fmt.Errorf("%s on %s: %w", q.ID, e.cfg.Name, err)
			}
			before := e.s.Counters()
			d, err := timeOp(reps, func() error {
				_, err := e.s.Query(e.id, q.XPath)
				return err
			})
			if err != nil {
				return t, err
			}
			work := e.s.Counters().Sub(before)
			perOp := (work.IndexProbes + work.RowsScanned) / int64(reps)
			t.Rows = append(t.Rows, []string{
				q.ID, q.Feature, e.cfg.Name,
				fmt.Sprint(len(res)), us(d), fmt.Sprint(perOp),
			})
		}
	}
	return t, nil
}

// insertPoint locates the target/position pair for a named insert location
// in the namerica region.
func insertPoint(s *ordxml.Store, id ordxml.DocID, where string) (ordxml.NodeID, ordxml.Position, error) {
	items, err := s.Query(id, "/site/regions/namerica/item")
	if err != nil {
		return 0, 0, err
	}
	if len(items) == 0 {
		return 0, 0, fmt.Errorf("no items")
	}
	switch where {
	case "begin":
		return items[0].ID, ordxml.Before, nil
	case "middle":
		return items[len(items)/2].ID, ordxml.Before, nil
	case "end":
		return items[len(items)-1].ID, ordxml.After, nil
	default:
		return 0, 0, fmt.Errorf("bad position %q", where)
	}
}

const insertFragment = `<item id="new"><name>fresh gadget</name><price>1.00</price><quantity>1</quantity><description>new</description></item>`

// RunE4 measures a single subtree insert at the beginning, middle and end of
// a region, per dense encoding (the paper's update-by-position figure).
func RunE4(itemsPerRegion int) (Table, error) {
	t := Table{
		Title:  "E4: insert cost by document position (dense encodings)",
		Note:   fmt.Sprintf("catalog with %d items/region; one %d-node subtree insert", itemsPerRegion, fragSize()),
		Header: []string{"position", "encoding", "us/insert", "rows renumbered"},
	}
	for _, where := range []string{"begin", "middle", "end"} {
		for _, cfg := range Encodings() {
			doc := CatalogDoc(itemsPerRegion)
			s, id, err := NewStore(cfg, doc)
			if err != nil {
				return t, err
			}
			target, pos, err := insertPoint(s, id, where)
			if err != nil {
				return t, err
			}
			start := nowNano()
			rep, err := s.Insert(id, target, pos, insertFragment)
			if err != nil {
				return t, err
			}
			elapsed := nowNano() - start
			t.Rows = append(t.Rows, []string{
				where, cfg.Name,
				fmt.Sprintf("%.1f", float64(elapsed)/1e3),
				fmt.Sprint(rep.RowsRenumbered),
			})
		}
	}
	return t, nil
}

func fragSize() int {
	n, err := xmltree.ParseString(insertFragment)
	if err != nil {
		return 0
	}
	return n.Size()
}

// RunE5 measures insert-at-beginning cost as the document grows — the
// scaling behaviour that separates global from local/Dewey.
func RunE5(sizes []int) (Table, error) {
	t := Table{
		Title:  "E5: insert-at-beginning cost vs document size (dense)",
		Header: []string{"items/region", "nodes", "encoding", "us/insert", "rows renumbered"},
	}
	for _, size := range sizes {
		doc := CatalogDoc(size)
		nodes := doc.Size()
		for _, cfg := range Encodings() {
			s, id, err := NewStore(cfg, doc)
			if err != nil {
				return t, err
			}
			target, pos, err := insertPoint(s, id, "begin")
			if err != nil {
				return t, err
			}
			start := nowNano()
			rep, err := s.Insert(id, target, pos, insertFragment)
			if err != nil {
				return t, err
			}
			elapsed := nowNano() - start
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(size), fmt.Sprint(nodes), cfg.Name,
				fmt.Sprintf("%.1f", float64(elapsed)/1e3),
				fmt.Sprint(rep.RowsRenumbered),
			})
		}
	}
	return t, nil
}

// RunE6 measures gap amortization: a burst of inserts at one point, by gap
// size, reporting how often renumbering fires and the total renumbered rows.
func RunE6(itemsPerRegion, inserts int, gaps []uint32) (Table, error) {
	t := Table{
		Title:  "E6: gap-based order amortization",
		Note:   fmt.Sprintf("%d repeated inserts before the same item", inserts),
		Header: []string{"encoding", "gap", "renumber events", "rows renumbered", "us/insert"},
	}
	for _, enc := range []ordxml.Encoding{ordxml.Global, ordxml.Local, ordxml.Dewey} {
		for _, cfg := range GapConfigs(enc, gaps) {
			doc := CatalogDoc(itemsPerRegion)
			s, id, err := NewStore(cfg, doc)
			if err != nil {
				return t, err
			}
			target, pos, err := insertPoint(s, id, "middle")
			if err != nil {
				return t, err
			}
			var events, renumbered int64
			start := nowNano()
			for i := 0; i < inserts; i++ {
				rep, err := s.Insert(id, target, pos, "<note>x</note>")
				if err != nil {
					return t, err
				}
				if rep.RowsRenumbered > 0 {
					events++
					renumbered += rep.RowsRenumbered
				}
			}
			elapsed := nowNano() - start
			t.Rows = append(t.Rows, []string{
				enc.String(), fmt.Sprint(cfg.Opts.Gap),
				fmt.Sprint(events), fmt.Sprint(renumbered),
				fmt.Sprintf("%.1f", float64(elapsed)/1e3/float64(inserts)),
			})
		}
	}
	return t, nil
}

// RunE7 measures document and subtree reconstruction per encoding.
func RunE7(itemsPerRegion, reps int) (Table, error) {
	t := Table{
		Title:  "E7: reconstruction (publish)",
		Header: []string{"scope", "encoding", "nodes", "ms/publish"},
	}
	doc := CatalogDoc(itemsPerRegion)
	for _, cfg := range Encodings() {
		s, id, err := NewStore(cfg, doc)
		if err != nil {
			return t, err
		}
		d, err := timeOp(reps, func() error {
			_, err := s.SerializeDocument(id)
			return err
		})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			"document", cfg.Name, fmt.Sprint(doc.Size()),
			fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e6),
		})
		// Subtree: the namerica region.
		hits, err := s.Query(id, "/site/regions/namerica")
		if err != nil {
			return t, fmt.Errorf("region lookup: %w", err)
		}
		if len(hits) != 1 {
			return t, fmt.Errorf("region lookup: got %d hits, want 1", len(hits))
		}
		regionID := hits[0].ID
		sub, err := s.Serialize(id, regionID)
		if err != nil {
			return t, err
		}
		subNodes := mustSize(sub)
		d, err = timeOp(reps, func() error {
			_, err := s.Serialize(id, regionID)
			return err
		})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			"region subtree", cfg.Name, fmt.Sprint(subNodes),
			fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e6),
		})
	}
	return t, nil
}

func mustSize(xml string) int {
	n, err := xmltree.ParseString(xml)
	if err != nil {
		return 0
	}
	return n.Size()
}

// RunE8 compares binary vs string Dewey keys: storage and two query shapes.
func RunE8(itemsPerRegion, reps int) (Table, error) {
	t := Table{
		Title:  "E8: Dewey key codec ablation (binary vs padded string)",
		Header: []string{"codec", "bytes", "Q2 us", "Q6 us"},
	}
	doc := CatalogDoc(itemsPerRegion)
	qs := QuerySuite(itemsPerRegion)
	q2, q6 := qs[1], qs[5]
	for _, cfg := range []Config{
		{Name: "binary", Opts: ordxml.Options{Encoding: ordxml.Dewey}},
		{Name: "string", Opts: ordxml.Options{Encoding: ordxml.Dewey, DeweyAsText: true}},
	} {
		s, id, err := NewStore(cfg, doc)
		if err != nil {
			return t, err
		}
		d2, err := timeOp(reps, func() error {
			_, err := s.Query(id, q2.XPath)
			return err
		})
		if err != nil {
			return t, err
		}
		d6, err := timeOp(reps, func() error {
			_, err := s.Query(id, q6.XPath)
			return err
		})
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			cfg.Name, fmt.Sprint(s.Storage().HeapBytes), us(d2), us(d6),
		})
	}
	return t, nil
}

// RunE9 measures query-time scaling with document size for three query
// shapes: a selective path (Q1), a root-anchored descendant sweep (Q6), and
// a mid-path descendant (Q9) — the shape where the encodings diverge.
func RunE9(sizes []int, reps int) (Table, error) {
	t := Table{
		Title:  "E9: query scaling with document size",
		Header: []string{"query", "items/region", "nodes", "encoding", "us/query", "work"},
	}
	for _, size := range sizes {
		doc := CatalogDoc(size)
		nodes := doc.Size()
		qs := QuerySuite(size)
		for _, q := range []QuerySpec{qs[0], qs[5], qs[8]} {
			for _, cfg := range Encodings() {
				s, id, err := NewStore(cfg, doc)
				if err != nil {
					return t, err
				}
				before := s.Counters()
				d, err := timeOp(reps, func() error {
					_, err := s.Query(id, q.XPath)
					return err
				})
				if err != nil {
					return t, err
				}
				work := s.Counters().Sub(before)
				perOp := (work.IndexProbes + work.RowsScanned) / int64(reps)
				t.Rows = append(t.Rows, []string{
					q.ID, fmt.Sprint(size), fmt.Sprint(nodes), cfg.Name, us(d), fmt.Sprint(perOp),
				})
			}
		}
	}
	return t, nil
}
