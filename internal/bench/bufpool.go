package bench

import (
	"fmt"
	"os"
	"time"

	"ordxml"
)

// Buffer-pool benchmark: the paper's experiments all run against an in-RAM
// store; this suite measures what the disk-paged tier costs and buys. For
// each pool size it opens a durable store with that many frames, loads the
// catalog document (write path under eviction pressure), takes a first
// checkpoint (full: every page is dirty), runs the E3 query mix (read path:
// hit ratio, faults), then applies one point update and checkpoints again
// (incremental: only the dirtied page path flushes).

// PoolResult is one (encoding, frames) cell of the buffer-pool benchmark,
// serialized into BENCH_bufpool.json.
type PoolResult struct {
	Encoding     string  `json:"encoding"`
	Frames       int     `json:"frames"`
	LoadMS       float64 `json:"load_ms"`
	QueryMS      float64 `json:"query_suite_ms"`
	HitPct       float64 `json:"hit_pct"`
	Evictions    int64   `json:"evictions"`
	FullCkptMS   float64 `json:"full_ckpt_ms"`
	FullFlushes  int64   `json:"full_ckpt_flushes"`
	IncrCkptMS   float64 `json:"incr_ckpt_ms"`
	IncrFlushes  int64   `json:"incr_ckpt_flushes"`
	HeapPages    int     `json:"heap_pages"`
	ResidentPeak int64   `json:"resident_frames"`
}

// PoolReport is the top-level shape of BENCH_bufpool.json.
type PoolReport struct {
	SchemaVersion  int          `json:"schema_version"`
	ItemsPerRegion int          `json:"items_per_region"`
	QueryMix       string       `json:"query_mix"`
	Results        []PoolResult `json:"results"`
}

// RunPool measures the paged tier at each pool size, per encoding. reps is
// how many times the query suite is cycled for the read measurement.
func RunPool(itemsPerRegion int, frames []int, reps int) (PoolReport, error) {
	rep := PoolReport{
		SchemaVersion:  1,
		ItemsPerRegion: itemsPerRegion,
		QueryMix:       "E3 Q1-Q9",
	}
	doc := CatalogDoc(itemsPerRegion)
	xml := doc.String()
	suite := QuerySuite(itemsPerRegion)
	for _, cfg := range Encodings() {
		for _, n := range frames {
			r, err := runPoolCell(cfg, xml, suite, n, reps)
			if err != nil {
				return rep, fmt.Errorf("%s frames=%d: %w", cfg.Name, n, err)
			}
			r.Encoding = cfg.Name
			rep.Results = append(rep.Results, r)
		}
	}
	return rep, nil
}

func runPoolCell(cfg Config, xml string, suite []QuerySpec, frames, reps int) (PoolResult, error) {
	dir, err := os.MkdirTemp("", "xmlbench-pool-*")
	if err != nil {
		return PoolResult{}, err
	}
	defer os.RemoveAll(dir)
	opts := cfg.Opts
	opts.BufferPoolFrames = frames
	s, err := ordxml.OpenDurable(dir, opts)
	if err != nil {
		return PoolResult{}, err
	}
	defer s.Close()
	r := PoolResult{Frames: frames}

	t0 := time.Now()
	id, err := s.LoadString("bench", xml)
	if err != nil {
		return r, err
	}
	r.LoadMS = ms(time.Since(t0))
	r.HeapPages = s.Storage().HeapPages

	t0 = time.Now()
	if err := s.Checkpoint(); err != nil {
		return r, err
	}
	r.FullCkptMS = ms(time.Since(t0))
	ps, _ := s.PoolStats()
	r.FullFlushes = ps.DirtyFlushes
	preHits, preMisses := ps.Hits, ps.Misses

	t0 = time.Now()
	for i := 0; i < reps; i++ {
		for _, q := range suite {
			if _, err := s.QueryValues(id, q.XPath); err != nil {
				return r, fmt.Errorf("%s: %w", q.ID, err)
			}
		}
	}
	r.QueryMS = ms(time.Since(t0))
	ps, _ = s.PoolStats()
	if acc := (ps.Hits - preHits) + (ps.Misses - preMisses); acc > 0 {
		r.HitPct = 100 * float64(ps.Hits-preHits) / float64(acc)
	}
	r.Evictions = ps.Evictions
	r.ResidentPeak = ps.Resident

	// One point update, then the incremental checkpoint.
	hits, err := s.Query(id, "/site/regions/namerica/item[1]")
	if err != nil {
		return r, fmt.Errorf("update target: %w", err)
	}
	if len(hits) == 0 {
		return r, fmt.Errorf("update target: no match")
	}
	if err := s.Rename(id, hits[0].ID, "itemx"); err != nil {
		return r, err
	}
	t0 = time.Now()
	if err := s.Checkpoint(); err != nil {
		return r, err
	}
	r.IncrCkptMS = ms(time.Since(t0))
	ps, _ = s.PoolStats()
	r.IncrFlushes = ps.DirtyFlushes - r.FullFlushes
	return r, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// PoolTable renders a report as an aligned text table.
func PoolTable(rep PoolReport) Table {
	t := Table{
		Title:  fmt.Sprintf("Buffer pool: paged tier, %s, %d items/region", rep.QueryMix, rep.ItemsPerRegion),
		Note:   "full ckpt = first checkpoint (all pages dirty); incr ckpt = after one point update",
		Header: []string{"encoding", "frames", "heap_pages", "load_ms", "query_ms", "hit_pct", "evict", "full_ckpt_ms", "full_flush", "incr_ckpt_ms", "incr_flush"},
	}
	for _, r := range rep.Results {
		t.Rows = append(t.Rows, []string{
			r.Encoding,
			fmt.Sprintf("%d", r.Frames),
			fmt.Sprintf("%d", r.HeapPages),
			fmt.Sprintf("%.1f", r.LoadMS),
			fmt.Sprintf("%.1f", r.QueryMS),
			fmt.Sprintf("%.1f", r.HitPct),
			fmt.Sprintf("%d", r.Evictions),
			fmt.Sprintf("%.1f", r.FullCkptMS),
			fmt.Sprintf("%d", r.FullFlushes),
			fmt.Sprintf("%.1f", r.IncrCkptMS),
			fmt.Sprintf("%d", r.IncrFlushes),
		})
	}
	return t
}
