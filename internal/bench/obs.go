package bench

import (
	"fmt"
	"os"
	"time"

	"ordxml"
)

// obsSchemaVersion identifies the BENCH_obs.json shape; bump on breaking
// changes.
const obsSchemaVersion = 1

// ObsRow is one encoding's tracing-overhead measurement: the E3 query suite
// timed with the request tracer off, then on, same store and plan cache.
type ObsRow struct {
	Encoding    string  `json:"encoding"`
	OffUsSuite  float64 `json:"off_us_per_suite"`
	OnUsSuite   float64 `json:"on_us_per_suite"`
	OverheadPct float64 `json:"overhead_pct"`
	// SpansBuffered and SpansDropped describe the trace buffer after the
	// tracing-on pass (dropped = ring overwrites).
	SpansBuffered int   `json:"spans_buffered"`
	SpansDropped  int64 `json:"spans_dropped"`
}

// ObsDurability is one traced pass over a disk-paged durable store: the WAL
// and buffer-pool activity the trace attributes, straight from the store's
// own stats, so the JSON report carries the fields alongside the span counts.
type ObsDurability struct {
	WALRecords    int64  `json:"wal_records"`
	WALFsyncs     int64  `json:"wal_fsyncs"`
	WALDurableLSN uint64 `json:"wal_durable_lsn"`
	PoolHits      int64  `json:"bufpool_hits"`
	PoolMisses    int64  `json:"bufpool_misses"`
	PoolEvictions int64  `json:"bufpool_evictions"`
	PoolFlushes   int64  `json:"bufpool_dirty_flushes"`
	SpansBuffered int    `json:"spans_buffered"`
}

// ObsReport is the BENCH_obs.json document: tracing overhead per encoding
// (target: under 5% on the E3 suite) plus one traced durable-store pass.
type ObsReport struct {
	SchemaVersion int            `json:"schema_version"`
	Items         int            `json:"items_per_region"`
	Reps          int            `json:"reps"`
	Rows          []ObsRow       `json:"rows"`
	Durability    *ObsDurability `json:"durability,omitempty"`
}

// RunObsOverhead measures what request tracing costs when on and proves it
// free when off: per dense encoding, the E3 suite runs reps times with the
// tracer disabled and again enabled, on the same warmed store. A final pass
// loads the catalog into a disk-paged durable store with tracing on and
// records the WAL/buffer-pool activity the spans attribute.
func RunObsOverhead(itemsPerRegion, reps int) (*ObsReport, error) {
	doc := CatalogDoc(itemsPerRegion)
	suite := QuerySuite(itemsPerRegion)
	rep := &ObsReport{SchemaVersion: obsSchemaVersion, Items: itemsPerRegion, Reps: reps}
	for _, cfg := range Encodings() {
		s, id, err := NewStore(cfg, doc)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		runSuite := func() (time.Duration, error) {
			return timeOp(reps, func() error {
				for _, q := range suite {
					if _, err := s.Query(id, q.XPath); err != nil {
						return err
					}
				}
				return nil
			})
		}
		// Warm plans and caches so neither pass pays first-run costs.
		if _, err := runSuite(); err != nil {
			return nil, fmt.Errorf("%s warmup: %w", cfg.Name, err)
		}
		off, err := runSuite()
		if err != nil {
			return nil, fmt.Errorf("%s tracing-off: %w", cfg.Name, err)
		}
		s.Tracer().SetEnabled(true)
		on, err := runSuite()
		s.Tracer().SetEnabled(false)
		if err != nil {
			return nil, fmt.Errorf("%s tracing-on: %w", cfg.Name, err)
		}
		row := ObsRow{
			Encoding:      cfg.Name,
			OffUsSuite:    float64(off.Nanoseconds()) / 1e3,
			OnUsSuite:     float64(on.Nanoseconds()) / 1e3,
			SpansBuffered: len(s.Tracer().Snapshot()),
			SpansDropped:  s.Tracer().Dropped(),
		}
		if off > 0 {
			row.OverheadPct = 100 * float64(on-off) / float64(off)
		}
		rep.Rows = append(rep.Rows, row)
	}
	dur, err := runObsDurable(doc.String(), suite)
	if err != nil {
		return nil, err
	}
	rep.Durability = dur
	return rep, nil
}

// runObsDurable loads the catalog into a disk-paged durable store with
// tracing on, runs the suite once plus a checkpoint, and reports the WAL and
// buffer-pool activity recorded alongside the spans.
func runObsDurable(xml string, suite []QuerySpec) (*ObsDurability, error) {
	dir, err := os.MkdirTemp("", "ordxml-obs-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	s, err := ordxml.OpenDurable(dir, ordxml.Options{Encoding: ordxml.Dewey, BufferPoolFrames: 64})
	if err != nil {
		return nil, fmt.Errorf("durable pass: %w", err)
	}
	defer s.Close()
	s.Tracer().SetEnabled(true)
	id, err := s.LoadString("bench", xml)
	if err != nil {
		return nil, fmt.Errorf("durable pass: %w", err)
	}
	for _, q := range suite {
		if _, err := s.Query(id, q.XPath); err != nil {
			return nil, fmt.Errorf("durable pass %s: %w", q.ID, err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		return nil, fmt.Errorf("durable pass: %w", err)
	}
	w, _ := s.WALStats()
	p, _ := s.PoolStats()
	return &ObsDurability{
		WALRecords:    w.Records,
		WALFsyncs:     w.Fsyncs,
		WALDurableLSN: w.DurableLSN,
		PoolHits:      p.Hits,
		PoolMisses:    p.Misses,
		PoolEvictions: p.Evictions,
		PoolFlushes:   p.DirtyFlushes,
		SpansBuffered: len(s.Tracer().Snapshot()),
	}, nil
}

// ObsTable renders the overhead report as a result table.
func ObsTable(rep *ObsReport) Table {
	t := Table{
		Title:  "Tracing overhead (E3 suite, tracer off vs on)",
		Note:   "one row per encoding; suite time is the whole query mix once",
		Header: []string{"encoding", "off us/suite", "on us/suite", "overhead", "spans"},
	}
	for _, r := range rep.Rows {
		t.Rows = append(t.Rows, []string{
			r.Encoding,
			fmt.Sprintf("%.1f", r.OffUsSuite),
			fmt.Sprintf("%.1f", r.OnUsSuite),
			fmt.Sprintf("%+.1f%%", r.OverheadPct),
			fmt.Sprint(r.SpansBuffered),
		})
	}
	if d := rep.Durability; d != nil {
		t.Note += fmt.Sprintf("; durable pass: %d WAL records, %d fsyncs, %d pool misses, %d spans",
			d.WALRecords, d.WALFsyncs, d.PoolMisses, d.SpansBuffered)
	}
	return t
}
