// Package bench is the experiment harness behind EXPERIMENTS.md: it builds
// the workloads, runs experiments E1–E9 (the reproduction of the paper's
// tables and figures), and renders result tables. The root bench_test.go
// exposes the same experiments as testing.B benchmarks; cmd/xmlbench prints
// the tables.
package bench

import (
	"fmt"
	"strings"
	"time"

	"ordxml"
	"ordxml/internal/xmlgen"
	"ordxml/internal/xmltree"
)

// Config names one encoding configuration under test.
type Config struct {
	Name string
	Opts ordxml.Options
}

// Encodings returns the three dense encodings — the paper's principal
// comparison.
func Encodings() []Config {
	return []Config{
		{Name: "global", Opts: ordxml.Options{Encoding: ordxml.Global}},
		{Name: "local", Opts: ordxml.Options{Encoding: ordxml.Local}},
		{Name: "dewey", Opts: ordxml.Options{Encoding: ordxml.Dewey}},
	}
}

// EncodingsWithText adds the string-Dewey ablation (E8).
func EncodingsWithText() []Config {
	return append(Encodings(),
		Config{Name: "dewey_text", Opts: ordxml.Options{Encoding: ordxml.Dewey, DeweyAsText: true}})
}

// GapConfigs returns one encoding at several gap settings (E6).
func GapConfigs(enc ordxml.Encoding, gaps []uint32) []Config {
	var out []Config
	for _, g := range gaps {
		out = append(out, Config{
			Name: fmt.Sprintf("%s/gap=%d", enc, g),
			Opts: ordxml.Options{Encoding: enc, Gap: g},
		})
	}
	return out
}

// CatalogDoc generates the standard catalog workload document.
func CatalogDoc(itemsPerRegion int) *xmltree.Node {
	return xmlgen.Catalog(xmlgen.CatalogConfig{
		Regions:          3,
		ItemsPerRegion:   itemsPerRegion,
		KeywordsPerItem:  2,
		DescriptionWords: 8,
		Seed:             42,
	})
}

// NewStore opens a store and loads the document, returning the doc id.
func NewStore(cfg Config, doc *xmltree.Node) (*ordxml.Store, ordxml.DocID, error) {
	s, err := ordxml.Open(cfg.Opts)
	if err != nil {
		return nil, 0, err
	}
	id, err := s.LoadString("bench", doc.String())
	if err != nil {
		return nil, 0, err
	}
	return s, id, nil
}

// QuerySpec is one entry of the E3 query suite.
type QuerySpec struct {
	ID      string
	XPath   string
	Feature string
}

// QuerySuite parametrizes the E3 queries for a catalog with the given
// items-per-region count.
func QuerySuite(itemsPerRegion int) []QuerySpec {
	mid := itemsPerRegion / 2
	if mid < 1 {
		mid = 1
	}
	return []QuerySpec{
		{"Q1", "/site/regions/namerica/item", "full path, no order"},
		{"Q2", fmt.Sprintf("/site/regions/namerica/item[%d]", mid), "position predicate"},
		{"Q3", "/site/regions/namerica/item[position() <= 10]", "position range"},
		{"Q4", "/site/regions/namerica/item[3]/following-sibling::item", "following-sibling"},
		{"Q5", fmt.Sprintf("/site/regions/namerica/item[%d]/preceding-sibling::item", mid), "preceding-sibling"},
		{"Q6", "//keyword", "descendant axis"},
		{"Q7", fmt.Sprintf("//item[@id = 'item%d']", mid), "point lookup by attribute"},
		{"Q8", "//item[quantity = '5']", "value filter via descendant"},
		{"Q9", "/site/regions/namerica//keyword", "mid-path descendant (ancestry test)"},
	}
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var sb strings.Builder
	sb.WriteString("== " + t.Title + " ==\n")
	if t.Note != "" {
		sb.WriteString(t.Note + "\n")
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

// timeOp measures fn over reps repetitions, returning the mean duration.
func timeOp(reps int, fn func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(reps), nil
}

func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3)
}
