package bench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ordxml"
	"ordxml/internal/obs"
)

// Load-shedding benchmark: closed-loop clients over the E3 query mix against
// a store whose admission gate is deliberately smaller than the offered
// load. The point of admission control is graceful degradation — as offered
// concurrency grows past the gate, the shed rate should rise while the
// latency of *admitted* requests stays bounded, instead of every request
// getting uniformly slower behind an unbounded queue.

// ShedResult is one (encoding, offered-clients) cell of the shed benchmark,
// serialized into BENCH_shed.json.
type ShedResult struct {
	Encoding string  `json:"encoding"`
	Offered  int     `json:"offered_clients"`
	Seconds  float64 `json:"seconds"`
	Admitted int64   `json:"admitted"`
	Shed     int64   `json:"shed"`
	ShedRate float64 `json:"shed_rate"`
	QPS      float64 `json:"admitted_qps"`
	MeanUS   float64 `json:"mean_us"`
	P50US    float64 `json:"p50_us"`
	P95US    float64 `json:"p95_us"`
	P99US    float64 `json:"p99_us"`
}

// ShedReport is the top-level shape of BENCH_shed.json.
type ShedReport struct {
	SchemaVersion  int          `json:"schema_version"`
	ItemsPerRegion int          `json:"items_per_region"`
	QueryMix       string       `json:"query_mix"`
	MaxActive      int          `json:"max_active"`
	MaxQueue       int          `json:"max_queue"`
	MaxWaitMS      float64      `json:"max_wait_ms"`
	Results        []ShedResult `json:"results"`
}

// RunShed measures admitted throughput, shed rate and admitted-request
// latency at each offered client count, per encoding, with the admission
// gate fixed at maxActive slots (queue of maxActive, 2 ms max wait).
func RunShed(itemsPerRegion int, offered []int, maxActive int, perLevel time.Duration) (ShedReport, error) {
	const maxWait = 2 * time.Millisecond
	rep := ShedReport{
		SchemaVersion:  1,
		ItemsPerRegion: itemsPerRegion,
		QueryMix:       "E3 Q1-Q9",
		MaxActive:      maxActive,
		MaxQueue:       maxActive,
		MaxWaitMS:      float64(maxWait.Microseconds()) / 1e3,
	}
	doc := CatalogDoc(itemsPerRegion)
	suite := QuerySuite(itemsPerRegion)
	for _, cfg := range Encodings() {
		s, id, err := NewStore(cfg, doc)
		if err != nil {
			return rep, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		// Warm plan caches before the gate goes up.
		for _, q := range suite {
			if _, err := s.QueryValues(id, q.XPath); err != nil {
				return rep, fmt.Errorf("%s %s: %w", cfg.Name, q.ID, err)
			}
		}
		s.SetAdmissionLimit(maxActive, maxActive, maxWait)
		for _, n := range offered {
			r, err := runShedLevel(s, id, suite, n, perLevel)
			if err != nil {
				return rep, fmt.Errorf("%s offered=%d: %w", cfg.Name, n, err)
			}
			r.Encoding = cfg.Name
			rep.Results = append(rep.Results, r)
		}
	}
	return rep, nil
}

// runShedLevel runs one closed-loop measurement: n clients cycle through the
// query suite until the window elapses, counting admitted and shed requests
// separately and timing only the admitted ones.
func runShedLevel(s *ordxml.Store, id ordxml.DocID, suite []QuerySpec, n int, window time.Duration) (ShedResult, error) {
	var (
		hist           obs.Histogram
		admitted, shed atomic.Int64
		stop           atomic.Bool
		wg             sync.WaitGroup
		errOnce        sync.Once
		runErr         error
	)
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; !stop.Load(); i++ {
				q := suite[i%len(suite)]
				t0 := time.Now()
				_, err := s.QueryValuesCtx(context.Background(), id, q.XPath)
				switch {
				case err == nil:
					hist.Observe(time.Since(t0))
					admitted.Add(1)
				case errors.Is(err, ordxml.ErrOverloaded):
					shed.Add(1)
					// Model a client retry delay: without it the fail-fast
					// shed path spins the closed loop into millions of
					// back-to-back sheds and the rate column saturates.
					time.Sleep(time.Millisecond)
				default:
					errOnce.Do(func() { runErr = fmt.Errorf("%s: %w", q.ID, err) })
					return
				}
			}
		}(w)
	}
	start := time.Now()
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return ShedResult{}, runErr
	}
	snap := hist.Snapshot()
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	total := admitted.Load() + shed.Load()
	rate := 0.0
	if total > 0 {
		rate = float64(shed.Load()) / float64(total)
	}
	return ShedResult{
		Offered:  n,
		Seconds:  elapsed.Seconds(),
		Admitted: admitted.Load(),
		Shed:     shed.Load(),
		ShedRate: rate,
		QPS:      float64(admitted.Load()) / elapsed.Seconds(),
		MeanUS:   us(snap.Mean()),
		P50US:    us(snap.P50),
		P95US:    us(snap.P95),
		P99US:    us(snap.P99),
	}, nil
}

// ShedTable renders a report as an aligned text table.
func ShedTable(rep ShedReport) Table {
	t := Table{
		Title: fmt.Sprintf("Shed: closed-loop %s, %d items/region, gate %d active / %d queued / %.1fms wait",
			rep.QueryMix, rep.ItemsPerRegion, rep.MaxActive, rep.MaxQueue, rep.MaxWaitMS),
		Note:   "latency columns cover admitted requests only; shed requests fail fast with ErrOverloaded",
		Header: []string{"encoding", "offered", "admitted_qps", "shed_rate", "mean_us", "p50_us", "p95_us", "p99_us"},
	}
	for _, r := range rep.Results {
		t.Rows = append(t.Rows, []string{
			r.Encoding,
			fmt.Sprintf("%d", r.Offered),
			fmt.Sprintf("%.0f", r.QPS),
			fmt.Sprintf("%.1f%%", 100*r.ShedRate),
			fmt.Sprintf("%.1f", r.MeanUS),
			fmt.Sprintf("%.1f", r.P50US),
			fmt.Sprintf("%.1f", r.P95US),
			fmt.Sprintf("%.1f", r.P99US),
		})
	}
	return t
}
