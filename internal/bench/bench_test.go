package bench

import (
	"strings"
	"testing"
	"time"
)

// The harness itself must be trustworthy: run every experiment at a tiny
// scale and sanity-check the table shapes and the relationships the
// reproduction depends on.

func TestE1StorageShape(t *testing.T) {
	tbl, err := RunE1([]int{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 { // 3 encodings + dewey_text
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	byEnc := map[string]string{}
	for _, r := range tbl.Rows {
		byEnc[r[2]] = r[4] // bytes
	}
	if byEnc["dewey_text"] <= byEnc["dewey"] && len(byEnc["dewey_text"]) <= len(byEnc["dewey"]) {
		t.Errorf("string dewey not larger: %v", byEnc)
	}
}

func TestE3QueriesRun(t *testing.T) {
	tbl, err := RunE3(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9*3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Every encoding must report the same result count per query.
	counts := map[string]string{}
	for _, r := range tbl.Rows {
		q, enc, n := r[0], r[2], r[3]
		if prev, ok := counts[q]; ok && prev != n {
			t.Errorf("%s: %s returned %s results, others %s", q, enc, n, prev)
		}
		counts[q] = n
	}
}

func TestE4E5UpdateShapes(t *testing.T) {
	tbl, err := RunE4(8)
	if err != nil {
		t.Fatal(err)
	}
	renum := map[string]map[string]string{}
	for _, r := range tbl.Rows {
		pos, enc := r[0], r[1]
		if renum[pos] == nil {
			renum[pos] = map[string]string{}
		}
		renum[pos][enc] = r[3]
	}
	// At "begin", local renumbers fewer rows than global.
	if renum["begin"]["local"] >= renum["begin"]["global"] &&
		len(renum["begin"]["local"]) >= len(renum["begin"]["global"]) {
		t.Errorf("local did not beat global at begin: %v", renum["begin"])
	}
	// "end" (after last item of first region) renumbers nothing for local.
	if renum["end"]["local"] != "0" {
		t.Errorf("local end insert renumbered %s", renum["end"]["local"])
	}
	if _, err := RunE5([]int{5}); err != nil {
		t.Fatal(err)
	}
}

func TestE6GapsReduceEvents(t *testing.T) {
	tbl, err := RunE6(6, 12, []uint32{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	// For each encoding, gap 16 must produce fewer renumber events than
	// gap 1.
	events := map[string]map[string]string{}
	for _, r := range tbl.Rows {
		enc, gap := r[0], r[1]
		if events[enc] == nil {
			events[enc] = map[string]string{}
		}
		events[enc][gap] = r[2]
	}
	for enc, m := range events {
		if m["16"] >= m["1"] && len(m["16"]) >= len(m["1"]) {
			t.Errorf("%s: gap 16 events %s, gap 1 events %s", enc, m["16"], m["1"])
		}
	}
}

func TestE7E8Run(t *testing.T) {
	tbl, err := RunE7(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("E7 rows = %d", len(tbl.Rows))
	}
	tbl, err = RunE8(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("E8 rows = %d", len(tbl.Rows))
	}
}

func TestE2Runs(t *testing.T) {
	if _, err := RunE2([]int{5}, 1); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"col", "longer_column"},
		Rows:   [][]string{{"value_that_is_long", "x"}},
	}
	out := tbl.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "a note") {
		t.Errorf("rendering:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("line count = %d", len(lines))
	}
}

func TestQuerySuiteParametrization(t *testing.T) {
	qs := QuerySuite(1)
	if len(qs) != 9 {
		t.Fatalf("suite size = %d", len(qs))
	}
	if !strings.Contains(qs[1].XPath, "[1]") {
		t.Errorf("mid clamped wrong: %s", qs[1].XPath)
	}
}

func TestE9Runs(t *testing.T) {
	tbl, err := RunE9([]int{6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3*3 {
		t.Fatalf("E9 rows = %d", len(tbl.Rows))
	}
}

func TestConcurrencyBenchRuns(t *testing.T) {
	rep, err := RunConcurrency(10, []int{1, 2}, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Results); got != 6 { // 3 encodings × 2 levels
		t.Fatalf("got %d results, want 6", got)
	}
	for _, r := range rep.Results {
		if r.Queries <= 0 || r.QPS <= 0 {
			t.Errorf("%s n=%d: no progress (queries=%d qps=%.1f)", r.Encoding, r.Goroutines, r.Queries, r.QPS)
		}
		if r.Goroutines == 1 && r.Speedup != 1 {
			t.Errorf("%s baseline speedup = %v, want 1", r.Encoding, r.Speedup)
		}
		if r.P50US <= 0 || r.P99US < r.P50US {
			t.Errorf("%s n=%d: bad quantiles p50=%v p99=%v", r.Encoding, r.Goroutines, r.P50US, r.P99US)
		}
	}
	tbl := ConcurrencyTable(rep)
	if len(tbl.Rows) != 6 || !strings.Contains(tbl.String(), "speedup") {
		t.Errorf("table rendering off:\n%s", tbl.String())
	}
}
