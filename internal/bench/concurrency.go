package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ordxml"
	"ordxml/internal/obs"
)

// Concurrency benchmark: closed-loop readers over the E3 query mix. Each of
// N goroutines runs the full query suite back-to-back (no think time) for a
// fixed wall-clock window against one shared store, while per-query latency
// goes into an obs.Histogram. Because readers pin a snapshot and hold no
// store lock, aggregate throughput should scale with goroutines; the
// single-goroutine run of the same loop is the baseline the speedup column
// is computed against.

// ConcurrencyResult is one (encoding, goroutines) cell of the concurrency
// benchmark, serialized into BENCH_concurrency.json.
type ConcurrencyResult struct {
	Encoding   string  `json:"encoding"`
	Goroutines int     `json:"goroutines"`
	Seconds    float64 `json:"seconds"`
	Queries    int64   `json:"queries"`
	QPS        float64 `json:"qps"`
	MeanUS     float64 `json:"mean_us"`
	P50US      float64 `json:"p50_us"`
	P95US      float64 `json:"p95_us"`
	P99US      float64 `json:"p99_us"`
	Speedup    float64 `json:"speedup_vs_1"`
}

// ConcurrencyReport is the top-level shape of BENCH_concurrency.json.
type ConcurrencyReport struct {
	SchemaVersion  int                 `json:"schema_version"`
	ItemsPerRegion int                 `json:"items_per_region"`
	QueryMix       string              `json:"query_mix"`
	Results        []ConcurrencyResult `json:"results"`
}

// RunConcurrency measures aggregate E3-mix read throughput at each
// goroutine count, per encoding. perLevel is the measurement window for one
// (encoding, goroutines) cell.
func RunConcurrency(itemsPerRegion int, goroutines []int, perLevel time.Duration) (ConcurrencyReport, error) {
	rep := ConcurrencyReport{
		SchemaVersion:  1,
		ItemsPerRegion: itemsPerRegion,
		QueryMix:       "E3 Q1-Q9",
	}
	doc := CatalogDoc(itemsPerRegion)
	suite := QuerySuite(itemsPerRegion)
	for _, cfg := range Encodings() {
		s, id, err := NewStore(cfg, doc)
		if err != nil {
			return rep, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		// Warm plan caches and prepared statements once, serially.
		for _, q := range suite {
			if _, err := s.QueryValues(id, q.XPath); err != nil {
				return rep, fmt.Errorf("%s %s: %w", cfg.Name, q.ID, err)
			}
		}
		baseline := 0.0
		for _, n := range goroutines {
			r, err := runConcurrencyLevel(s, id, suite, n, perLevel)
			if err != nil {
				return rep, fmt.Errorf("%s n=%d: %w", cfg.Name, n, err)
			}
			r.Encoding = cfg.Name
			if n == 1 {
				baseline = r.QPS
			}
			if baseline > 0 {
				r.Speedup = r.QPS / baseline
			}
			rep.Results = append(rep.Results, r)
		}
	}
	return rep, nil
}

// runConcurrencyLevel runs one closed-loop measurement: n goroutines cycle
// through the query suite until the window elapses.
func runConcurrencyLevel(s *ordxml.Store, id ordxml.DocID, suite []QuerySpec, n int, window time.Duration) (ConcurrencyResult, error) {
	var (
		hist    obs.Histogram
		queries atomic.Int64
		stop    atomic.Bool
		wg      sync.WaitGroup
		errOnce sync.Once
		runErr  error
	)
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func(w int) {
			defer wg.Done()
			// Stagger starting offsets so goroutines don't run the suite in
			// lockstep.
			for i := w; !stop.Load(); i++ {
				q := suite[i%len(suite)]
				t0 := time.Now()
				_, err := s.QueryValues(id, q.XPath)
				hist.Observe(time.Since(t0))
				if err != nil {
					errOnce.Do(func() { runErr = fmt.Errorf("%s: %w", q.ID, err) })
					return
				}
				queries.Add(1)
			}
		}(w)
	}
	start := time.Now()
	time.Sleep(window)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return ConcurrencyResult{}, runErr
	}
	snap := hist.Snapshot()
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return ConcurrencyResult{
		Goroutines: n,
		Seconds:    elapsed.Seconds(),
		Queries:    queries.Load(),
		QPS:        float64(queries.Load()) / elapsed.Seconds(),
		MeanUS:     us(snap.Mean()),
		P50US:      us(snap.P50),
		P95US:      us(snap.P95),
		P99US:      us(snap.P99),
	}, nil
}

// ConcurrencyTable renders a report as an aligned text table.
func ConcurrencyTable(rep ConcurrencyReport) Table {
	t := Table{
		Title:  fmt.Sprintf("Concurrency: closed-loop %s, %d items/region", rep.QueryMix, rep.ItemsPerRegion),
		Note:   "aggregate read throughput; speedup is vs. the 1-goroutine run of the same encoding",
		Header: []string{"encoding", "goroutines", "qps", "speedup", "mean_us", "p50_us", "p95_us", "p99_us"},
	}
	for _, r := range rep.Results {
		t.Rows = append(t.Rows, []string{
			r.Encoding,
			fmt.Sprintf("%d", r.Goroutines),
			fmt.Sprintf("%.0f", r.QPS),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.1f", r.MeanUS),
			fmt.Sprintf("%.1f", r.P50US),
			fmt.Sprintf("%.1f", r.P95US),
			fmt.Sprintf("%.1f", r.P99US),
		})
	}
	return t
}
