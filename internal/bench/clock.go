package bench

import "time"

// nowNano is a tiny indirection over the wall clock so single-shot
// measurements read uniformly with timeOp.
func nowNano() int64 { return time.Now().UnixNano() }
