package bench

import (
	"fmt"
	"time"
)

// StageStat aggregates one XPath pipeline stage over a traced query batch.
type StageStat struct {
	Stage string        `json:"stage"`
	Total time.Duration `json:"total_ns"`
	Count int64         `json:"count"`
}

// StageBreakdown runs the E3 query suite under stage tracing for every dense
// encoding and returns the cumulative per-stage wall time (parse, translate,
// exec, post, sort), keyed by encoding name. It is the data behind
// xmlbench -stats: where each encoding spends its query time.
func StageBreakdown(itemsPerRegion, reps int) (map[string][]StageStat, error) {
	doc := CatalogDoc(itemsPerRegion)
	suite := QuerySuite(itemsPerRegion)
	out := map[string][]StageStat{}
	for _, cfg := range Encodings() {
		s, id, err := NewStore(cfg, doc)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		acc := map[string]*StageStat{}
		var order []string
		for i := 0; i < reps; i++ {
			for _, q := range suite {
				_, stages, err := s.QueryTrace(id, q.XPath)
				if err != nil {
					return nil, fmt.Errorf("%s %s: %w", cfg.Name, q.ID, err)
				}
				for _, st := range stages {
					a := acc[st.Name]
					if a == nil {
						a = &StageStat{Stage: st.Name}
						acc[st.Name] = a
						order = append(order, st.Name)
					}
					a.Total += st.Dur
					a.Count += st.Count
				}
			}
		}
		stats := make([]StageStat, 0, len(order))
		for _, n := range order {
			stats = append(stats, *acc[n])
		}
		out[cfg.Name] = stats
	}
	return out, nil
}

// StageTable renders a breakdown as a result table (encoding × stage).
func StageTable(breakdown map[string][]StageStat) Table {
	t := Table{
		Title:  "XPath pipeline stage breakdown (E3 suite)",
		Note:   "cumulative wall time per stage; count = spans folded into the stage",
		Header: []string{"encoding", "stage", "total", "count"},
	}
	for _, cfg := range Encodings() {
		for _, st := range breakdown[cfg.Name] {
			t.Rows = append(t.Rows, []string{
				cfg.Name, st.Stage, st.Total.Round(time.Microsecond).String(),
				fmt.Sprintf("%d", st.Count),
			})
		}
	}
	return t
}
