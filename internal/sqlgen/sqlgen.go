// Package sqlgen is the audited path for assembling SQL statement text.
//
// The engine binds every value through `?` placeholders, so the only text
// that legitimately varies at runtime is identifiers: the per-encoding nodes
// table (xg_nodes, xl_nodes, xd_nodes, xs_nodes) and its order column
// (gorder, lorder, path). SQL validates each interpolated identifier against
// a strict grammar before splicing, which keeps two properties the engine
// depends on:
//
//   - no injection: a hostile or corrupt identifier cannot break out of the
//     statement (it panics at Prepare time instead, loudly);
//   - plan-cache friendliness: statement text stays a function of the schema
//     only, never of values, so the cache keyed by SQL text keeps hitting.
//
// The rawsql analyzer (internal/lint/rawsql, run via cmd/ordlint) enforces
// that all other packages route SQL construction through here.
package sqlgen

import (
	"fmt"
	"regexp"
	"strings"
)

// identRe is the accepted identifier grammar: the engine's table and column
// names, nothing more. No quoting mechanism exists on purpose — an
// identifier that needs quoting has no business in this schema.
var identRe = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

// SQL renders a statement template. Every %s placeholder is substituted with
// the corresponding identifier argument; each argument must be a valid
// identifier or a comma-separated identifier list (for column lists). Any
// other format verb, a placeholder/argument count mismatch, or an invalid
// identifier panics: statement templates are compiled-in and prepared at
// startup, so a bad one is a programming error, not a runtime condition.
func SQL(format string, idents ...string) string {
	if n := countPlaceholders(format); n != len(idents) {
		panic(fmt.Sprintf("sqlgen.SQL: template has %d %%s placeholders but %d identifiers given: %q", n, len(idents), format))
	}
	args := make([]any, len(idents))
	for i, id := range idents {
		args[i] = IdentList(id)
	}
	return fmt.Sprintf(format, args...)
}

// Ident validates a single SQL identifier and returns it unchanged. It
// panics on anything outside [A-Za-z_][A-Za-z0-9_]*.
func Ident(name string) string {
	if !identRe.MatchString(name) {
		panic(fmt.Sprintf("sqlgen: invalid SQL identifier %q", name))
	}
	return name
}

// IdentList validates a comma-separated list of identifiers ("id, parent,
// gorder") and returns it with canonical ", " separators.
func IdentList(list string) string {
	parts := strings.Split(list, ",")
	for i, p := range parts {
		parts[i] = Ident(strings.TrimSpace(p))
	}
	return strings.Join(parts, ", ")
}

// List joins the given identifiers into a validated column list.
func List(names ...string) string {
	for _, n := range names {
		Ident(n)
	}
	return strings.Join(names, ", ")
}

// countPlaceholders counts %s conversions and panics on any other verb; the
// template language is deliberately just "identifier goes here".
func countPlaceholders(format string) int {
	n := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		if i+1 >= len(format) {
			panic(fmt.Sprintf("sqlgen.SQL: dangling %% in template %q", format))
		}
		switch format[i+1] {
		case 's':
			n++
		case '%':
		default:
			panic(fmt.Sprintf("sqlgen.SQL: unsupported verb %%%c in template %q (only %%s identifiers allowed)", format[i+1], format))
		}
		i++
	}
	return n
}
