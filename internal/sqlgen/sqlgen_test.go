package sqlgen

import (
	"strings"
	"testing"
)

func TestSQL(t *testing.T) {
	got := SQL(`SELECT %s FROM %s WHERE doc = ?`, "gorder", "xg_nodes")
	want := `SELECT gorder FROM xg_nodes WHERE doc = ?`
	if got != want {
		t.Fatalf("SQL = %q, want %q", got, want)
	}
}

func TestSQLColumnList(t *testing.T) {
	got := SQL(`SELECT %s FROM %s`, "id, parent,kind", "xl_nodes")
	want := `SELECT id, parent, kind FROM xl_nodes`
	if got != want {
		t.Fatalf("SQL = %q, want %q", got, want)
	}
}

func TestSQLEscapedPercent(t *testing.T) {
	got := SQL(`SELECT id FROM %s WHERE tag LIKE '%%x'`, "xd_nodes")
	if !strings.Contains(got, "'%x'") {
		t.Fatalf("escaped %%%% not preserved: %q", got)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestSQLRejects(t *testing.T) {
	mustPanic(t, "injection", func() {
		SQL(`DELETE FROM %s`, "docs; DROP TABLE docs")
	})
	mustPanic(t, "quoted", func() {
		SQL(`SELECT id FROM %s`, `"docs"`)
	})
	mustPanic(t, "empty", func() {
		SQL(`SELECT id FROM %s`, "")
	})
	mustPanic(t, "arity-low", func() {
		SQL(`SELECT %s FROM %s`, "id")
	})
	mustPanic(t, "arity-high", func() {
		SQL(`SELECT id FROM %s`, "docs", "extra")
	})
	mustPanic(t, "verb", func() {
		SQL(`SELECT id FROM docs WHERE id = %d`)
	})
	mustPanic(t, "dangling", func() {
		SQL(`SELECT id FROM docs WHERE x = '%`)
	})
}

func TestIdent(t *testing.T) {
	if Ident("xg_nodes") != "xg_nodes" {
		t.Fatal("valid identifier mangled")
	}
	mustPanic(t, "leading-digit", func() { Ident("1x") })
	mustPanic(t, "space", func() { Ident("a b") })
}

func TestList(t *testing.T) {
	if got := List("id", "parent", "path"); got != "id, parent, path" {
		t.Fatalf("List = %q", got)
	}
	mustPanic(t, "bad element", func() { List("id", "pa rent") })
}
