// Package failpoint provides named fault-injection points for crash and
// error testing of the durability subsystem. A failpoint is declared once
// at package initialization (`var fp = failpoint.New("wal.sync.before-fsync")`)
// and consulted on the hot path with fp.Hit(), which is two atomic loads and
// no allocation while nothing is armed — cheap enough to leave compiled into
// production paths.
//
// Arming is programmatic (Arm, for unit tests) or via the environment (the
// ORDXML_FAILPOINTS variable, for child processes in crash-torture tests):
//
//	ORDXML_FAILPOINTS="wal.sync.before-fsync=crash@3,checkpoint.before-rename=error"
//
// Each entry is <name>=<mode>[@N]; the failpoint triggers on its Nth hit
// (default 1). Mode "crash" terminates the process immediately with
// CrashExitCode, bypassing deferred functions — simulating a machine crash at
// exactly that point. Mode "error" makes Hit return an error wrapping
// ErrInjected once, then disarms, so callers' error paths run and the process
// survives. Mode "enospc" is error mode with the injected error additionally
// wrapping syscall.ENOSPC — simulating a full disk, so degraded-mode handling
// that inspects the underlying errno can be exercised.
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// CrashExitCode is the process exit status used by crash-mode failpoints,
// chosen to be distinguishable from go test's own failure codes.
const CrashExitCode = 86

// EnvVar names the environment variable read for arming specs.
const EnvVar = "ORDXML_FAILPOINTS"

// ErrInjected is the sentinel wrapped by every error-mode injection.
var ErrInjected = errors.New("failpoint: injected error")

// Mode selects what a triggered failpoint does.
type Mode int

// Failpoint modes.
const (
	// Off means the failpoint is not armed.
	Off Mode = iota
	// Crash terminates the process with CrashExitCode at the trigger hit.
	Crash
	// Error makes Hit return an error at the trigger hit, then disarms.
	Error
	// Enospc is Error with the injected error also wrapping syscall.ENOSPC,
	// simulating a full disk at the trigger hit.
	Enospc
)

// String returns the mode's spelling in arming specs.
func (m Mode) String() string {
	switch m {
	case Crash:
		return "crash"
	case Error:
		return "error"
	case Enospc:
		return "enospc"
	default:
		return "off"
	}
}

// parseMode reads a mode spelling.
func parseMode(s string) (Mode, error) {
	switch s {
	case "crash":
		return Crash, nil
	case "error":
		return Error, nil
	case "enospc":
		return Enospc, nil
	default:
		return Off, fmt.Errorf("failpoint: unknown mode %q (want crash, error or enospc)", s)
	}
}

// FP is one registered failpoint. The zero value is not usable; declare
// failpoints with New.
type FP struct {
	name string
	// mode holds the armed Mode (Off when disarmed).
	mode atomic.Int32
	// countdown is the number of Hit calls remaining before the trigger;
	// the hit that decrements it to zero triggers.
	countdown atomic.Int64
	// hits counts Hit calls observed while armed (test introspection).
	hits atomic.Int64
}

// registry state. armedCount is the global fast-path gate: Hit returns
// immediately while it is zero, so disabled failpoints cost one atomic load.
var (
	mu         sync.Mutex
	registry   = map[string]*FP{}
	armedCount atomic.Int32
	envSpecs   map[string]Spec
	envOnce    sync.Once
)

// Spec is one parsed arming entry.
type Spec struct {
	Mode  Mode
	After int64
}

// New declares and registers a failpoint. Names must be unique across the
// process; New panics on duplicates (failpoints are package-level singletons).
// If the environment spec names this failpoint, it is armed immediately.
func New(name string) *FP {
	loadEnv()
	mu.Lock()
	defer mu.Unlock()
	if _, ok := registry[name]; ok {
		panic("failpoint: duplicate registration of " + name)
	}
	fp := &FP{name: name}
	registry[name] = fp
	if spec, ok := envSpecs[name]; ok {
		fp.arm(spec.Mode, spec.After)
	}
	return fp
}

// loadEnv parses the arming environment variable once. Parsing is deferred to
// the first New call so it runs after the package is initialized regardless
// of init order; a malformed spec is a hard failure (the torture harness must
// never silently run without its failpoint).
func loadEnv() {
	envOnce.Do(func() {
		specs, err := ParseSpecs(os.Getenv(EnvVar))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		envSpecs = specs
	})
}

// ParseSpecs parses a comma-separated arming spec list
// ("a=crash,b=error@2"). Exposed for tests and tools.
func ParseSpecs(env string) (map[string]Spec, error) {
	specs := map[string]Spec{}
	if strings.TrimSpace(env) == "" {
		return specs, nil
	}
	for _, part := range strings.Split(env, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("failpoint: bad spec %q (want name=mode[@N])", part)
		}
		modeStr, afterStr, hasAfter := strings.Cut(rest, "@")
		mode, err := parseMode(modeStr)
		if err != nil {
			return nil, err
		}
		after := int64(1)
		if hasAfter {
			after, err = strconv.ParseInt(afterStr, 10, 64)
			if err != nil || after < 1 {
				return nil, fmt.Errorf("failpoint: bad hit count in %q", part)
			}
		}
		specs[name] = Spec{Mode: mode, After: after}
	}
	return specs, nil
}

// arm sets the failpoint's trigger. Caller holds mu.
func (f *FP) arm(mode Mode, after int64) {
	if f.mode.Load() == int32(Off) && mode != Off {
		armedCount.Add(1)
	}
	if f.mode.Load() != int32(Off) && mode == Off {
		armedCount.Add(-1)
	}
	f.countdown.Store(after)
	f.mode.Store(int32(mode))
}

// Arm arms a registered failpoint to trigger on its after-th Hit (after >= 1).
func Arm(name string, mode Mode, after int64) error {
	if after < 1 {
		return fmt.Errorf("failpoint: hit count must be >= 1, got %d", after)
	}
	if mode == Off {
		return Disarm(name)
	}
	mu.Lock()
	defer mu.Unlock()
	fp, ok := registry[name]
	if !ok {
		return fmt.Errorf("failpoint: no failpoint named %q", name)
	}
	fp.arm(mode, after)
	return nil
}

// Disarm turns a failpoint off.
func Disarm(name string) error {
	mu.Lock()
	defer mu.Unlock()
	fp, ok := registry[name]
	if !ok {
		return fmt.Errorf("failpoint: no failpoint named %q", name)
	}
	fp.arm(Off, 1)
	return nil
}

// Reset disarms every failpoint (test teardown).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for _, fp := range registry {
		fp.arm(Off, 1)
	}
}

// Names returns every registered failpoint name, sorted. The crash-torture
// harness iterates this list so new failpoints are exercised automatically.
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Name returns the failpoint's registered name.
func (f *FP) Name() string { return f.name }

// Hits returns the number of Hit calls observed while armed.
func (f *FP) Hits() int64 { return f.hits.Load() }

// Check consumes one hit and reports whether this hit triggers the
// failpoint. It never crashes or errors itself — callers that need to
// perform work at the trigger (e.g. a deliberate torn write) branch on Check
// and then call Act. Most call sites use Hit, which combines the two.
func (f *FP) Check() bool {
	if armedCount.Load() == 0 {
		return false
	}
	if Mode(f.mode.Load()) == Off {
		return false
	}
	f.hits.Add(1)
	return f.countdown.Add(-1) == 0
}

// Act performs the armed mode's action: crash mode terminates the process,
// error mode disarms the failpoint and returns an error wrapping ErrInjected.
// Call only after Check returned true.
func (f *FP) Act() error {
	switch Mode(f.mode.Load()) {
	case Crash:
		fmt.Fprintf(os.Stderr, "failpoint %s: crashing process\n", f.name)
		os.Exit(CrashExitCode)
		return nil // unreachable
	case Error:
		mu.Lock()
		f.arm(Off, 1)
		mu.Unlock()
		return fmt.Errorf("failpoint %s: %w", f.name, ErrInjected)
	case Enospc:
		mu.Lock()
		f.arm(Off, 1)
		mu.Unlock()
		return fmt.Errorf("failpoint %s: %w: %w", f.name, ErrInjected, syscall.ENOSPC)
	default:
		return nil
	}
}

// Hit consumes one hit: nil while the failpoint is disarmed or the trigger
// count has not been reached; at the trigger it crashes (crash mode) or
// returns an injected error (error mode).
func (f *FP) Hit() error {
	if !f.Check() {
		return nil
	}
	return f.Act()
}
