package failpoint

import (
	"errors"
	"testing"
)

var fpTest = New("test.point")

func TestDisarmedHitIsNil(t *testing.T) {
	Reset()
	for i := 0; i < 3; i++ {
		if err := fpTest.Hit(); err != nil {
			t.Fatalf("disarmed hit %d returned %v", i, err)
		}
	}
}

func TestErrorModeTriggersOnNthHit(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Arm("test.point", Error, 3); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := fpTest.Hit(); err != nil {
			t.Fatalf("hit %d triggered early: %v", i, err)
		}
	}
	err := fpTest.Hit()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 3: want ErrInjected, got %v", err)
	}
	// Error mode disarms after triggering.
	if err := fpTest.Hit(); err != nil {
		t.Fatalf("hit after trigger should be nil, got %v", err)
	}
	if got := fpTest.Hits(); got != 3 {
		t.Fatalf("hits = %d, want 3", got)
	}
}

func TestArmUnknownName(t *testing.T) {
	if err := Arm("no.such.point", Error, 1); err == nil {
		t.Fatal("arming an unregistered failpoint should fail")
	}
	if err := Disarm("no.such.point"); err == nil {
		t.Fatal("disarming an unregistered failpoint should fail")
	}
}

func TestNamesIncludesRegistered(t *testing.T) {
	found := false
	for _, n := range Names() {
		if n == "test.point" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v, missing test.point", Names())
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("a.b=crash, c.d=error@5")
	if err != nil {
		t.Fatal(err)
	}
	if s := specs["a.b"]; s.Mode != Crash || s.After != 1 {
		t.Fatalf("a.b = %+v", s)
	}
	if s := specs["c.d"]; s.Mode != Error || s.After != 5 {
		t.Fatalf("c.d = %+v", s)
	}
	for _, bad := range []string{"nomode", "x=explode", "x=crash@0", "x=crash@z"} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Fatalf("spec %q should not parse", bad)
		}
	}
	if specs, err := ParseSpecs(""); err != nil || len(specs) != 0 {
		t.Fatalf("empty spec: %v %v", specs, err)
	}
}

func TestArmOffDisarms(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Arm("test.point", Error, 1); err != nil {
		t.Fatal(err)
	}
	if err := Arm("test.point", Off, 1); err != nil {
		t.Fatal(err)
	}
	if err := fpTest.Hit(); err != nil {
		t.Fatalf("hit after disarm: %v", err)
	}
}

func BenchmarkDisarmedHit(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := fpTest.Hit(); err != nil {
			b.Fatal(err)
		}
	}
}
