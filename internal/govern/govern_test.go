package govern

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ordxml/internal/obs"
)

func TestCtxErrTypes(t *testing.T) {
	if err := CtxErr(nil); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if err := CtxErr(context.Background()); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := CtxErr(ctx)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: %v", err)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	err = CtxErr(dctx)
	if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx: %v", err)
	}
}

func TestRecoveredWrapsErrInternal(t *testing.T) {
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = Recovered(p)
			}
		}()
		panic("boom")
	}()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("want ErrInternal, got %v", err)
	}
}

func TestAccountantBudget(t *testing.T) {
	var a *Accountant
	if err := a.Charge(1 << 40); err != nil {
		t.Fatalf("nil accountant charged: %v", err)
	}
	a = NewAccountant(100, nil)
	if err := a.Charge(60); err != nil {
		t.Fatal(err)
	}
	if err := a.Charge(60); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("overflow charge: %v", err)
	}
	// The overflowing charge is still recorded, so release stays balanced.
	if got := a.Used(); got != 120 {
		t.Fatalf("used = %d, want 120", got)
	}
	a.Release(120)
	if got, peak := a.Used(), a.Peak(); got != 0 || peak != 120 {
		t.Fatalf("used, peak = %d, %d; want 0, 120", got, peak)
	}
	// Unlimited accountant only tracks.
	a = NewAccountant(0, nil)
	if err := a.Charge(1 << 40); err != nil {
		t.Fatalf("unlimited: %v", err)
	}
}

func TestAccountantMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMemMetrics(reg)
	a := NewAccountant(10, met)
	a.Charge(8)
	if err := a.Charge(8); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("want budget abort, got %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["mem.charged_bytes"]; got != 16 {
		t.Fatalf("charged_bytes = %d", got)
	}
	if got := snap.Counters["mem.budget_aborts"]; got != 1 {
		t.Fatalf("budget_aborts = %d", got)
	}
	if got := snap.Gauges["mem.query_peak_bytes"]; got != 16 {
		t.Fatalf("query_peak_bytes = %d", got)
	}
}

func TestAccountantContext(t *testing.T) {
	if got := AccountantFrom(context.Background()); got != nil {
		t.Fatalf("empty ctx carries %v", got)
	}
	a := NewAccountant(1, nil)
	ctx := WithAccountant(context.Background(), a)
	if got := AccountantFrom(ctx); got != a {
		t.Fatal("accountant lost in ctx")
	}
}

func TestAdmissionNilAdmitsEverything(t *testing.T) {
	var a *Admission
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
}

func TestAdmissionShedsWhenSaturated(t *testing.T) {
	// One slot, no queue: the second concurrent request sheds immediately.
	a := NewAdmission(1, 0, 0)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	r1()
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	r2()
}

func TestAdmissionQueueAdmitsAfterRelease(t *testing.T) {
	a := NewAdmission(1, 1, time.Second)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var qerr error
	go func() {
		defer wg.Done()
		r2, err := a.Acquire(context.Background())
		if err != nil {
			qerr = err
			return
		}
		r2()
	}()
	time.Sleep(10 * time.Millisecond)
	r1()
	wg.Wait()
	if qerr != nil {
		t.Fatalf("queued request: %v", qerr)
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := NewAdmission(1, 4, 5*time.Millisecond)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want timeout shed, got %v", err)
	}
}

func TestAdmissionQueueCancellation(t *testing.T) {
	// A client giving up while queued is a cancellation, not a shed.
	a := NewAdmission(1, 4, time.Minute)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := a.Acquire(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

func TestAdmissionMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAdmission(2, 0, 0)
	a.RegisterMetrics(reg)
	r1, _ := a.Acquire(context.Background())
	r2, _ := a.Acquire(context.Background())
	a.Acquire(context.Background()) // shed
	snap := reg.Snapshot()
	if got := snap.Counters["admission.admitted"]; got != 2 {
		t.Fatalf("admitted = %d", got)
	}
	if got := snap.Counters["admission.shed"]; got != 1 {
		t.Fatalf("shed = %d", got)
	}
	if got := snap.Gauges["admission.active"]; got != 2 {
		t.Fatalf("active = %d", got)
	}
	r1()
	r2()
	if got := reg.Snapshot().Gauges["admission.active"]; got != 0 {
		t.Fatalf("active after release = %d", got)
	}
}
