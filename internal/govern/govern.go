// Package govern is the query-lifecycle governance layer: the typed errors,
// cooperative-cancellation helpers, per-query memory accounting and
// store-level admission control that keep one runaway statement (or one
// overload burst) from taking the whole process with it.
//
// The package sits below the SQL engine and above nothing: it depends only on
// the standard library and the obs metrics registry, so the executor, the
// XPath translator and the public Store API can all share one vocabulary of
// failure:
//
//   - ErrCanceled / ErrDeadlineExceeded — the statement's context fired; the
//     operator tree noticed at its next poll point and unwound, releasing
//     snapshot pins and worker goroutines on the way out.
//   - ErrMemoryBudget — a pipeline-breaking operator (hash join build, sort
//     buffer, result materialization) asked the query's accountant for more
//     bytes than the configured budget allows.
//   - ErrOverloaded — the store's admission gate shed the request instead of
//     queueing it unboundedly: every active slot was taken and the bounded
//     wait queue was full (or the wait timed out).
//   - ErrInternal — a statement panicked; the panic was contained at the
//     statement boundary and converted to this error so one executor bug
//     fails one query, not the process.
//
// All helpers are nil-safe: a nil *Accountant charges nothing, a nil
// *Admission admits everything, a nil context never cancels. Ungoverned
// paths therefore cost two nil checks, not a configuration burden.
package govern

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"ordxml/internal/obs"
)

// Typed governance errors. Each is a sentinel for errors.Is; the concrete
// errors returned by the engine wrap both the sentinel and the underlying
// cause (e.g. context.DeadlineExceeded), so callers can match either.
var (
	// ErrCanceled reports a statement aborted because its context was
	// canceled.
	ErrCanceled = errors.New("query canceled")
	// ErrDeadlineExceeded reports a statement aborted because its context's
	// deadline passed.
	ErrDeadlineExceeded = errors.New("query deadline exceeded")
	// ErrMemoryBudget reports a statement aborted for exceeding its memory
	// budget.
	ErrMemoryBudget = errors.New("query memory budget exceeded")
	// ErrOverloaded reports a request shed by admission control.
	ErrOverloaded = errors.New("store overloaded")
	// ErrInternal reports a statement that panicked and was contained at the
	// statement boundary.
	ErrInternal = errors.New("internal error")
)

// PollInterval is how many rows an operator produces between context polls.
// Small enough that a 1 ms deadline aborts a scan mid-page, large enough
// that the atomic load disappears in the per-row cost.
const PollInterval = 256

// CtxErr maps a context's error to the typed governance sentinel, wrapping
// both so errors.Is matches ErrDeadlineExceeded/ErrCanceled as well as
// context.DeadlineExceeded/context.Canceled. It returns nil for a nil or
// live context.
func CtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	err := ctx.Err()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	default:
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
}

// Recovered converts a recovered panic value into an ErrInternal-wrapped
// error carrying the panic message and stack. Call from a deferred recover
// at a statement boundary:
//
//	defer func() {
//		if p := recover(); p != nil {
//			err = govern.Recovered(p)
//		}
//	}()
func Recovered(p any) error {
	return fmt.Errorf("%w: statement panicked: %v\n%s", ErrInternal, p, debug.Stack())
}

// MemMetrics is the shared mem.* metrics sink charged by every query
// accountant created against one store.
type MemMetrics struct {
	charged *obs.Counter // mem.charged_bytes: total bytes ever charged
	aborts  *obs.Counter // mem.budget_aborts: statements killed over budget
	peak    *obs.Gauge   // mem.query_peak_bytes: largest single-query footprint
}

// NewMemMetrics registers the mem.* metrics on reg and returns the sink.
func NewMemMetrics(reg *obs.Registry) *MemMetrics {
	return &MemMetrics{
		charged: reg.Counter("mem.charged_bytes"),
		aborts:  reg.Counter("mem.budget_aborts"),
		peak:    reg.Gauge("mem.query_peak_bytes"),
	}
}

// Accountant tracks one query's memory footprint against a budget. Charges
// come from pipeline-breaking operators (hash tables, sort buffers, result
// materialization); the accountant is shared by every statement a single
// request runs (an XPath query issues several), so the budget bounds the
// request, not each statement separately. A nil accountant accepts every
// charge. Accountants are goroutine-safe: Gather workers charge
// concurrently.
type Accountant struct {
	budget int64 // 0 = unlimited
	used   atomic.Int64
	peak   atomic.Int64
	met    *MemMetrics
}

// NewAccountant returns an accountant enforcing budget bytes (0 for
// accounting without enforcement). met may be nil.
func NewAccountant(budget int64, met *MemMetrics) *Accountant {
	return &Accountant{budget: budget, met: met}
}

// Charge records n more bytes of footprint and fails with ErrMemoryBudget
// once the total exceeds the budget. The charge is recorded even when it
// overflows, so Release stays balanced on abort paths.
func (a *Accountant) Charge(n int64) error {
	if a == nil || n <= 0 {
		return nil
	}
	used := a.used.Add(n)
	if used > a.peak.Load() {
		a.peak.Store(used)
		if a.met != nil {
			a.met.peak.SetMax(used)
		}
	}
	if a.met != nil {
		a.met.charged.Add(n)
	}
	if a.budget > 0 && used > a.budget {
		if a.met != nil {
			a.met.aborts.Inc()
		}
		return fmt.Errorf("%w: query needs > %d bytes, budget is %d", ErrMemoryBudget, used, a.budget)
	}
	return nil
}

// Release returns n bytes to the budget (an operator freed its buffers
// mid-query, e.g. a drained hash-join partition).
func (a *Accountant) Release(n int64) {
	if a == nil || n <= 0 {
		return
	}
	a.used.Add(-n)
}

// Used returns the current charged footprint.
func (a *Accountant) Used() int64 {
	if a == nil {
		return 0
	}
	return a.used.Load()
}

// Peak returns the high-water footprint.
func (a *Accountant) Peak() int64 {
	if a == nil {
		return 0
	}
	return a.peak.Load()
}

// ctxKey carries the request's accountant through a context.
type ctxKey struct{}

// WithAccountant returns a context carrying a, so every statement the
// request runs charges one shared budget.
func WithAccountant(ctx context.Context, a *Accountant) context.Context {
	if a == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, a)
}

// AccountantFrom returns the accountant carried by ctx, or nil.
func AccountantFrom(ctx context.Context) *Accountant {
	if ctx == nil {
		return nil
	}
	a, _ := ctx.Value(ctxKey{}).(*Accountant)
	return a
}

// Admission is a store-level admission gate: at most maxActive requests run
// at once, at most maxQueue more wait (bounded, with a wait timeout), and
// everything beyond that is shed immediately with ErrOverloaded. Shedding
// under overload keeps latency for admitted requests predictable instead of
// letting an unbounded queue grow until everything is slow.
type Admission struct {
	slots    chan struct{} // one token per active slot
	maxQueue int64
	maxWait  time.Duration
	waiting  atomic.Int64

	admitted *obs.Counter   // admission.admitted
	shed     *obs.Counter   // admission.shed
	waitHist *obs.Histogram // admission.wait (time spent queued)
}

// NewAdmission returns a gate admitting maxActive concurrent requests with
// a wait queue of maxQueue and a per-request queue timeout of maxWait
// (0 means "don't wait at all" — shed as soon as no slot is free).
// maxActive < 1 is raised to 1.
func NewAdmission(maxActive, maxQueue int, maxWait time.Duration) *Admission {
	if maxActive < 1 {
		maxActive = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{
		slots:    make(chan struct{}, maxActive),
		maxQueue: int64(maxQueue),
		maxWait:  maxWait,
	}
}

// RegisterMetrics publishes the admission.* metrics on reg.
func (a *Admission) RegisterMetrics(reg *obs.Registry) {
	if a == nil {
		return
	}
	a.admitted = reg.Counter("admission.admitted")
	a.shed = reg.Counter("admission.shed")
	a.waitHist = reg.Histogram("admission.wait")
	reg.RegisterFunc("admission.active", func() int64 { return int64(len(a.slots)) })
	reg.RegisterFunc("admission.waiting", a.waiting.Load)
	reg.RegisterFunc("admission.max_active", func() int64 { return int64(cap(a.slots)) })
}

// Acquire admits the request or sheds it. On success the returned release
// function MUST be called exactly once when the request finishes. A nil
// gate admits everything. Cancellation while queued returns the typed
// context error, not ErrOverloaded — the client gave up, the store did not
// shed.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	// Fast path: a slot is free right now.
	select {
	case a.slots <- struct{}{}:
		if a.admitted != nil {
			a.admitted.Inc()
		}
		return a.release, nil
	default:
	}
	// Saturated: join the bounded wait queue or shed immediately.
	if a.maxWait <= 0 {
		return a.shedErr("no slot free")
	}
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		return a.shedErr("wait queue full")
	}
	defer a.waiting.Add(-1)
	t := time.NewTimer(a.maxWait)
	defer t.Stop()
	timeout := t.C
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	start := time.Now()
	select {
	case a.slots <- struct{}{}:
		if a.waitHist != nil {
			a.waitHist.Observe(time.Since(start))
		}
		if a.admitted != nil {
			a.admitted.Inc()
		}
		return a.release, nil
	case <-timeout:
		return a.shedErr("queued past wait timeout")
	case <-done:
		return nil, CtxErr(ctx)
	}
}

// release frees one active slot.
func (a *Admission) release() { <-a.slots }

// shedErr counts and builds one shed outcome.
func (a *Admission) shedErr(why string) (func(), error) {
	if a.shed != nil {
		a.shed.Inc()
	}
	return nil, fmt.Errorf("%w: %s (%d active, %d waiting)",
		ErrOverloaded, why, len(a.slots), a.waiting.Load())
}
