// Package wal implements a write-ahead log of logical store mutations: an
// append-only file of length-prefixed, CRC32-checksummed records with
// monotonically increasing sequence numbers (LSNs), group fsync, and
// torn-tail recovery that truncates a half-written final record instead of
// failing.
//
// The log stores *logical* operations (the ordered-XML layer's record
// encoding is opaque bytes here), so replay is a redo pass: reload the last
// snapshot, then re-apply every record with an LSN past the snapshot's.
// Appends are acknowledged only after fsync; a group-commit protocol lets
// concurrent appenders share one write+fsync.
//
// Failure handling is fail-stop: after any write or fsync error the log
// refuses further appends (the file tail state is unknowable), and the next
// Open truncates whatever torn tail the failure left behind.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ordxml/internal/failpoint"
	"ordxml/internal/obs"
	olog "ordxml/internal/obs/log"
)

// Failpoints threaded through the append/sync/rotate paths. The crash-torture
// harness arms each of these in a child process and kills it there.
var (
	fpAppend       = failpoint.New("wal.append")
	fpSyncPartial  = failpoint.New("wal.sync.partial-write")
	fpSyncBefore   = failpoint.New("wal.sync.before-fsync")
	fpSyncAfter    = failpoint.New("wal.sync.after-fsync")
	fpRotateBefore = failpoint.New("wal.rotate.before")
	fpRotateRename = failpoint.New("wal.rotate.before-rename")
	fpReplay       = failpoint.New("wal.replay.record")
)

// Stats is a point-in-time summary of a log's activity since Open.
type Stats struct {
	// Appends counts records appended.
	Appends int64
	// AppendedBytes counts framed bytes appended (headers included).
	AppendedBytes int64
	// Fsyncs counts fsync calls on the log file.
	Fsyncs int64
	// Rotations counts Rotate calls that completed.
	Rotations int64
	// LastLSN is the highest LSN handed out (0 when none).
	LastLSN uint64
	// DurableLSN is the highest LSN known fsynced to disk.
	DurableLSN uint64
	// SizeBytes is the current log file size, durable bytes only.
	SizeBytes int64
}

// metrics are the log's obs instruments, resolved once at Open.
type metrics struct {
	appends     *obs.Counter
	appendBytes *obs.Counter
	fsyncs      *obs.Counter
	rotations   *obs.Counter
	replayed    *obs.Counter
	appendLat   *obs.Histogram
	fsyncLat    *obs.Histogram
	lastLSN     *obs.Gauge
	sizeBytes   *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		appends:     reg.Counter("wal.appends"),
		appendBytes: reg.Counter("wal.append.bytes"),
		fsyncs:      reg.Counter("wal.fsyncs"),
		rotations:   reg.Counter("wal.rotations"),
		replayed:    reg.Counter("wal.replay.records"),
		appendLat:   reg.Histogram("wal.append.latency"),
		fsyncLat:    reg.Histogram("wal.fsync.latency"),
		lastLSN:     reg.Gauge("wal.last_lsn"),
		sizeBytes:   reg.Gauge("wal.size_bytes"),
	}
}

// Log is one write-ahead log file. Safe for concurrent use.
type Log struct {
	path string

	mu      sync.Mutex
	cond    *sync.Cond // signals completion of a group sync
	f       *os.File
	pending []byte // framed records appended but not yet written
	nextLSN uint64 // LSN the next Append hands out
	lastIn  uint64 // last LSN placed in pending (0 = none yet)
	durable uint64 // highest LSN fsynced
	size    int64  // durable file size
	syncing bool   // a group-commit leader is writing
	failed  error  // sticky write/fsync failure; log refuses further appends

	stats struct {
		appends, appendedBytes, fsyncs, rotations int64
	}
	met *metrics
	log *olog.Logger
}

// Open opens (creating if absent) the log at path, validates its header,
// scans the records and truncates a torn tail, leaving the log positioned to
// append with the next sequential LSN. Metrics are registered on reg (a
// private registry is used when reg is nil).
func Open(path string, reg *obs.Registry) (*Log, error) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{path: path, f: f, nextLSN: 1, met: newMetrics(reg), log: reg.Log()}
	l.cond = sync.NewCond(&l.mu)
	if err := l.recover(); err != nil {
		f.Close()
		return nil, err
	}
	// Readiness gauge: how far the assigned-LSN horizon runs ahead of the
	// fsynced one. Nonzero only while a group commit is in flight; a stuck
	// value signals a wedged or failed log.
	reg.RegisterFunc("wal.durable_lag", func() int64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return int64((l.nextLSN - 1) - l.durable)
	})
	return l, nil
}

// Failed returns the sticky write/fsync failure that put the log in its
// fail-stop state, or nil while the log is healthy. Health endpoints poll it.
func (l *Log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// recover validates the header (writing one into a fresh or torn-created
// file), scans records, and truncates the file after the last valid record.
func (l *Log) recover() error {
	st, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat %s: %w", l.path, err)
	}
	if st.Size() < int64(len(fileMagic)) {
		// Fresh log, or a crash landed between creation and the header
		// fsync. No record can exist yet; initialize the header.
		if err := l.f.Truncate(0); err != nil {
			return fmt.Errorf("wal: init %s: %w", l.path, err)
		}
		if _, err := l.f.WriteAt([]byte(fileMagic), 0); err != nil {
			return fmt.Errorf("wal: init %s: %w", l.path, err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: init %s: %w", l.path, err)
		}
		if err := SyncDir(filepath.Dir(l.path)); err != nil {
			return err
		}
		if _, err := l.f.Seek(int64(len(fileMagic)), io.SeekStart); err != nil {
			return fmt.Errorf("wal: seek %s: %w", l.path, err)
		}
		l.size = int64(len(fileMagic))
		return nil
	}
	end, last, err := scan(l.f, l.path, nil)
	if err != nil {
		return err
	}
	if end < st.Size() {
		// Torn tail: a crash interrupted a record write. Everything past the
		// last valid record is unacknowledged by construction (acknowledgment
		// follows fsync of a complete record), so truncation loses nothing
		// that was promised.
		l.log.Warn("wal: truncating torn tail",
			olog.Str("path", l.path),
			olog.Int("torn_bytes", st.Size()-end),
			olog.Int("valid_bytes", end))
		if err := l.f.Truncate(end); err != nil {
			return fmt.Errorf("wal: truncate torn tail of %s: %w", l.path, err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync after truncate of %s: %w", l.path, err)
		}
	}
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("wal: seek %s: %w", l.path, err)
	}
	l.size = end
	if last > 0 {
		l.nextLSN = last + 1
		l.durable = last
		l.met.lastLSN.SetMax(int64(last))
	}
	l.met.sizeBytes.Set(l.size)
	return nil
}

// scan reads records from the start of f, calling fn (when non-nil) for each
// valid record, and returns the offset just past the last valid record plus
// the last valid LSN. Invalid data — short frame, bad CRC, absurd length,
// non-sequential LSN — ends the scan without error: the caller treats the
// remainder as a torn tail.
func scan(f *os.File, path string, fn func(Record) error) (end int64, lastLSN uint64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, 0, fmt.Errorf("wal: read header of %s: %w", path, err)
	}
	if string(magic) != fileMagic {
		return 0, 0, fmt.Errorf("wal: %s is not an ordxml WAL file (bad magic %q)", path, magic)
	}
	end = int64(len(fileMagic))
	hdr := make([]byte, frameHeader)
	var payload []byte
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			return end, lastLSN, nil // clean EOF or torn frame header
		}
		plen := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if plen == 0 || plen > maxRecord {
			return end, lastLSN, nil
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			return end, lastLSN, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return end, lastLSN, nil // corrupt payload
		}
		lsn, kind, body, perr := decodePayload(payload)
		if perr != nil || lsn == 0 {
			return end, lastLSN, nil
		}
		if lastLSN != 0 && lsn != lastLSN+1 {
			return end, lastLSN, nil // out-of-sequence record
		}
		if fn != nil {
			rec := Record{LSN: lsn, Kind: kind, Body: append([]byte(nil), body...)}
			if err := fn(rec); err != nil {
				return end, lastLSN, err
			}
		}
		lastLSN = lsn
		end += int64(frameHeader) + int64(plen)
	}
}

// Replay re-reads the log from the start and calls fn for every record with
// LSN > from, in order. It must run before the first Append on this Log
// (recovery replays into the store, then appending resumes).
func (l *Log) Replay(from uint64, fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.stats.appends > 0 || len(l.pending) > 0 {
		return fmt.Errorf("wal: Replay after Append on %s", l.path)
	}
	_, _, err := scan(l.f, l.path, func(rec Record) error {
		if rec.LSN <= from {
			return nil
		}
		if err := fpReplay.Hit(); err != nil {
			return err
		}
		l.met.replayed.Inc()
		return fn(rec)
	})
	if serr := l.seekEndLocked(); serr != nil && err == nil {
		err = serr
	}
	return err
}

func (l *Log) seekEndLocked() error {
	if _, err := l.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("wal: seek %s: %w", l.path, err)
	}
	return nil
}

// EnsureNextLSN raises the next LSN to at least next. Recovery calls this so
// that after a checkpoint rotates the log empty, LSNs continue from the
// snapshot's high-water mark instead of restarting.
func (l *Log) EnsureNextLSN(next uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nextLSN < next {
		l.nextLSN = next
		if next > 1 {
			l.durable = next - 1
		}
	}
}

// LastLSN returns the most recently assigned LSN (0 when none).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// DurableLSN returns the highest LSN known fsynced.
func (l *Log) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Append assigns the next LSN to a record and buffers it without forcing it
// to disk; pair with Sync (or use AppendSync) to make it durable.
func (l *Log) Append(kind byte, body []byte) (uint64, error) {
	start := time.Now()
	if err := fpAppend.Hit(); err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return 0, l.failed
	}
	lsn := l.nextLSN
	l.nextLSN++
	before := len(l.pending)
	l.pending = appendFrame(l.pending, lsn, kind, body)
	l.lastIn = lsn
	added := int64(len(l.pending) - before)
	l.stats.appends++
	l.stats.appendedBytes += added
	l.met.appends.Inc()
	l.met.appendBytes.Add(added)
	l.met.lastLSN.SetMax(int64(lsn))
	l.met.appendLat.Observe(time.Since(start))
	return lsn, nil
}

// Sync forces every buffered record to disk (write + fsync) and returns when
// they are durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commitLocked(l.lastIn)
}

// AppendSync appends a record and returns once it is durable. Concurrent
// callers group-commit: one leader writes and fsyncs every pending record,
// and the others just wait for their LSN to become durable.
func (l *Log) AppendSync(kind byte, body []byte) (uint64, error) {
	lsn, err := l.Append(kind, body)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.commitLocked(lsn); err != nil {
		return 0, err
	}
	return lsn, nil
}

// commitLocked blocks until every record up to target is durable, electing
// this goroutine as the group-commit leader when no sync is in flight.
// Caller holds l.mu.
func (l *Log) commitLocked(target uint64) error {
	for l.durable < target {
		if l.failed != nil {
			return l.failed
		}
		if l.syncing {
			l.cond.Wait()
			continue
		}
		// Become the leader: take the whole pending buffer, release the lock
		// for the disk work, then publish the new durable horizon.
		l.syncing = true
		buf := l.pending
		flushTo := l.lastIn
		l.pending = nil
		l.mu.Unlock()
		err := l.writeAndSync(buf)
		l.mu.Lock()
		l.syncing = false
		if err != nil {
			l.failed = fmt.Errorf("wal: log failed, refusing further appends: %w", err)
			l.log.Error("wal: log failed, refusing further appends",
				olog.Str("path", l.path), olog.Err(err))
			l.cond.Broadcast()
			return l.failed
		}
		l.durable = flushTo
		l.size += int64(len(buf))
		l.met.sizeBytes.Set(l.size)
		l.cond.Broadcast()
	}
	return nil
}

// writeAndSync writes buf at the log tail and fsyncs. Called without l.mu by
// the group-commit leader; the file offset is only ever touched by the
// single active leader (or by Rotate, which excludes appends by contract).
func (l *Log) writeAndSync(buf []byte) error {
	if len(buf) > 0 && fpSyncPartial.Check() {
		// Deliberately tear the tail: write half of the batch, force it to
		// disk so the torn bytes really land, then crash or fail.
		l.f.Write(buf[:(len(buf)+1)/2])
		l.f.Sync()
		return fpSyncPartial.Act()
	}
	if len(buf) > 0 {
		if _, err := l.f.Write(buf); err != nil {
			return fmt.Errorf("append to %s: %w", l.path, err)
		}
	}
	if err := fpSyncBefore.Hit(); err != nil {
		return err
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("fsync %s: %w", l.path, err)
	}
	l.stats.fsyncs++
	l.met.fsyncs.Inc()
	l.met.fsyncLat.Observe(time.Since(start))
	if err := fpSyncAfter.Hit(); err != nil {
		return err
	}
	return nil
}

// Rotate atomically replaces the log with an empty one, preserving the LSN
// sequence. The caller must guarantee no concurrent appends (the store holds
// its mutation lock across checkpoint). Used after a snapshot has been
// durably renamed into place: the records below the snapshot LSN are then
// redundant.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if err := l.commitLocked(l.lastIn); err != nil {
		return err
	}
	if err := fpRotateBefore.Hit(); err != nil {
		return err
	}
	tmp := l.path + ".rotate"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate %s: %w", l.path, err)
	}
	cleanup := func() {
		nf.Close()
		os.Remove(tmp)
	}
	if _, err := nf.Write([]byte(fileMagic)); err != nil {
		cleanup()
		return fmt.Errorf("wal: rotate %s: %w", l.path, err)
	}
	if err := nf.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("wal: rotate %s: %w", l.path, err)
	}
	if err := fpRotateRename.Hit(); err != nil {
		cleanup()
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		cleanup()
		return fmt.Errorf("wal: rotate %s: %w", l.path, err)
	}
	if err := SyncDir(filepath.Dir(l.path)); err != nil {
		// The rename already happened; without the directory fsync the
		// log's on-disk identity is unknowable, so fail-stop.
		nf.Close()
		l.failed = err
		return err
	}
	l.f.Close()
	l.f = nf
	l.size = int64(len(fileMagic))
	l.stats.rotations++
	l.met.rotations.Inc()
	l.met.sizeBytes.Set(l.size)
	return nil
}

// Stats returns the log's activity summary.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:       l.stats.appends,
		AppendedBytes: l.stats.appendedBytes,
		Fsyncs:        l.stats.fsyncs,
		Rotations:     l.stats.rotations,
		LastLSN:       l.nextLSN - 1,
		DurableLSN:    l.durable,
		SizeBytes:     l.size,
	}
}

// Close syncs buffered records and closes the file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.commitLocked(l.lastIn)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// SyncDir fsyncs a directory so a just-created or just-renamed entry in it
// survives a crash.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync dir %s: %w", dir, err)
	}
	return nil
}
