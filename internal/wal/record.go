package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk format. The file starts with a fixed magic string; each record is
// a frame:
//
//	u32 LE  payload length
//	u32 LE  CRC32 (IEEE) of the payload
//	payload = uvarint LSN, byte kind, kind-specific body
//
// The CRC covers the payload only; a torn frame header or payload is
// detected by length/CRC and truncated away on open (see scan). LSNs within
// one file increase by exactly 1, so a stale or misplaced record also fails
// validation.

const (
	fileMagic = "ordxmlWAL1"
	// frameHeader is the fixed per-record prefix: length + CRC.
	frameHeader = 8
	// maxRecord bounds a single record payload; larger lengths are treated
	// as corruption rather than allocated.
	maxRecord = 1 << 28
)

// Record is one logical mutation entry.
type Record struct {
	LSN  uint64
	Kind byte
	Body []byte
}

// appendFrame appends the framed encoding of one record to dst.
func appendFrame(dst []byte, lsn uint64, kind byte, body []byte) []byte {
	var lsnBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lsnBuf[:], lsn)
	payloadLen := n + 1 + len(body)

	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payloadLen))
	crc := crc32.NewIEEE()
	crc.Write(lsnBuf[:n])
	crc.Write([]byte{kind})
	crc.Write(body)
	binary.LittleEndian.PutUint32(hdr[4:8], crc.Sum32())

	dst = append(dst, hdr[:]...)
	dst = append(dst, lsnBuf[:n]...)
	dst = append(dst, kind)
	dst = append(dst, body...)
	return dst
}

// decodePayload splits a verified payload into LSN, kind and body. The body
// aliases payload.
func decodePayload(payload []byte) (lsn uint64, kind byte, body []byte, err error) {
	lsn, n := binary.Uvarint(payload)
	if n <= 0 || n >= len(payload) {
		return 0, 0, nil, fmt.Errorf("wal: bad record payload (no kind byte)")
	}
	return lsn, payload[n], payload[n+1:], nil
}

// BodyWriter builds a record body: a sequence of uvarint-framed fields.
// Methods never fail; the result is read back with BodyReader.
type BodyWriter struct {
	b []byte
}

// Uint appends an unsigned integer field.
func (w *BodyWriter) Uint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }

// Int appends a signed integer field.
func (w *BodyWriter) Int(v int64) { w.b = binary.AppendVarint(w.b, v) }

// Bytes appends a length-prefixed byte field.
func (w *BodyWriter) Bytes(v []byte) {
	w.b = binary.AppendUvarint(w.b, uint64(len(v)))
	w.b = append(w.b, v...)
}

// String appends a length-prefixed string field.
func (w *BodyWriter) String(v string) {
	w.b = binary.AppendUvarint(w.b, uint64(len(v)))
	w.b = append(w.b, v...)
}

// Finish returns the encoded body.
func (w *BodyWriter) Finish() []byte { return w.b }

// BodyReader decodes a record body written by BodyWriter. Errors are sticky:
// after the first failure every accessor returns a zero value and Err
// reports the failure.
type BodyReader struct {
	b   []byte
	err error
}

// NewBodyReader wraps an encoded body.
func NewBodyReader(b []byte) *BodyReader { return &BodyReader{b: b} }

// Err returns the first decoding error, if any.
func (r *BodyReader) Err() error { return r.err }

func (r *BodyReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wal: truncated record body reading %s", what)
	}
}

// Uint reads an unsigned integer field.
func (r *BodyReader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("uint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Int reads a signed integer field.
func (r *BodyReader) Int() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("int")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Bytes reads a byte field. The result is a copy.
func (r *BodyReader) Bytes() []byte {
	if r.err != nil {
		return nil
	}
	l, n := binary.Uvarint(r.b)
	if n <= 0 || uint64(len(r.b)-n) < l {
		r.fail("bytes")
		return nil
	}
	out := make([]byte, l)
	copy(out, r.b[n:n+int(l)])
	r.b = r.b[n+int(l):]
	return out
}

// String reads a string field.
func (r *BodyReader) String() string {
	if r.err != nil {
		return ""
	}
	l, n := binary.Uvarint(r.b)
	if n <= 0 || uint64(len(r.b)-n) < l {
		r.fail("string")
		return ""
	}
	out := string(r.b[n : n+int(l)])
	r.b = r.b[n+int(l):]
	return out
}
