package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ordxml/internal/failpoint"
)

func openLog(t *testing.T, path string) *Log {
	t.Helper()
	l, err := Open(path, nil)
	if err != nil {
		t.Fatalf("wal open: %v", err)
	}
	return l
}

// collect replays every record into a slice.
func collect(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var recs []Record
	if err := l.Replay(from, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	for i := 0; i < 10; i++ {
		lsn, err := l.AppendSync(byte(i%3+1), []byte(fmt.Sprintf("body-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l = openLog(t, path)
	defer l.Close()
	recs := collect(t, l, 0)
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Kind != byte(i%3+1) || string(r.Body) != fmt.Sprintf("body-%d", i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// Replay from an offset skips the prefix.
	if got := collect(t, openLog(t, path), 7); len(got) != 3 || got[0].LSN != 8 {
		t.Fatalf("replay from 7 = %+v", got)
	}
	// Appending resumes the sequence.
	lsn, err := l.AppendSync(9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 11 {
		t.Fatalf("resumed lsn = %d, want 11", lsn)
	}
}

// TestTornTailEveryPrefix is the core torn-write property: for every prefix
// of a valid log file, Open must succeed and recover a prefix of the
// appended records — never an error, never a corrupt record.
func TestTornTailEveryPrefix(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.log")
	l := openLog(t, full)
	const n = 6
	for i := 0; i < n; i++ {
		if _, err := l.AppendSync(1, []byte(fmt.Sprintf("record-number-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cl, err := Open(path, nil)
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		recs := collect(t, cl, 0)
		for i, r := range recs {
			if r.LSN != uint64(i+1) || string(r.Body) != fmt.Sprintf("record-number-%d", i) {
				t.Fatalf("cut=%d: record %d corrupt: %+v", cut, i, r)
			}
		}
		// A full frame survives iff the cut is past its last byte.
		if cut == len(data) && len(recs) != n {
			t.Fatalf("cut=%d (full): recovered %d records, want %d", cut, len(recs), n)
		}
		// The recovered log must accept appends at the right LSN.
		lsn, err := cl.AppendSync(2, []byte("after"))
		if err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if lsn != uint64(len(recs)+1) {
			t.Fatalf("cut=%d: resumed lsn %d after %d records", cut, lsn, len(recs))
		}
		cl.Close()
	}
}

func TestCorruptPayloadTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	for i := 0; i < 3; i++ {
		if _, err := l.AppendSync(1, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Flip a byte in the last record's payload.
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l = openLog(t, path)
	defer l.Close()
	if recs := collect(t, l, 0); len(recs) != 2 {
		t.Fatalf("recovered %d records after corruption, want 2", len(recs))
	}
	st, _ := os.Stat(path)
	if st.Size() >= int64(len(data)) {
		t.Fatalf("corrupt tail not truncated: size %d", st.Size())
	}
}

func TestNotAWALFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus")
	if err := os.WriteFile(path, []byte("this is definitely not a WAL file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, nil); err == nil {
		t.Fatal("opening a non-WAL file should fail")
	}
}

func TestRotatePreservesLSNs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	defer l.Close()
	for i := 0; i < 5; i++ {
		if _, err := l.AppendSync(1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	lsn, err := l.AppendSync(1, []byte("post-rotate"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 6 {
		t.Fatalf("post-rotate lsn = %d, want 6", lsn)
	}
	if st := l.Stats(); st.Rotations != 1 {
		t.Fatalf("rotations = %d", st.Rotations)
	}
	l.Close()

	// The rotated file contains only the post-rotate record.
	l = openLog(t, path)
	recs := collect(t, l, 0)
	if len(recs) != 1 || recs[0].LSN != 6 || string(recs[0].Body) != "post-rotate" {
		t.Fatalf("after rotate: %+v", recs)
	}
}

func TestEnsureNextLSN(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	defer l.Close()
	l.EnsureNextLSN(100)
	lsn, err := l.AppendSync(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 100 {
		t.Fatalf("lsn = %d, want 100", lsn)
	}
	l.EnsureNextLSN(50) // never lowers
	if got := l.LastLSN(); got != 100 {
		t.Fatalf("LastLSN = %d", got)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	const writers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.AppendSync(1, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != writers*per || st.DurableLSN != writers*per {
		t.Fatalf("stats = %+v", st)
	}
	if st.Fsyncs > st.Appends {
		t.Fatalf("more fsyncs (%d) than appends (%d)?", st.Fsyncs, st.Appends)
	}
	l.Close()
	l = openLog(t, path)
	defer l.Close()
	if recs := collect(t, l, 0); len(recs) != writers*per {
		t.Fatalf("recovered %d records", len(recs))
	}
}

func TestInjectedSyncErrorIsSticky(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	if _, err := l.AppendSync(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Arm("wal.sync.before-fsync", failpoint.Error, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendSync(1, []byte("doomed")); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	// The log is fail-stop after a sync failure.
	if _, err := l.AppendSync(1, []byte("refused")); err == nil {
		t.Fatal("append after failure should be refused")
	}
	l.Close()
	// Reopen recovers the acknowledged prefix.
	l = openLog(t, path)
	defer l.Close()
	recs := collect(t, l, 0)
	if len(recs) < 1 || string(recs[0].Body) != "ok" {
		t.Fatalf("recovered %+v", recs)
	}
}

func TestInjectedPartialWriteTornTail(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	if _, err := l.AppendSync(1, []byte("first-record")); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Arm("wal.sync.partial-write", failpoint.Error, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendSync(1, []byte("torn-record-torn-record")); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	l.Close()
	// The torn bytes are on disk; reopen must truncate them away.
	l = openLog(t, path)
	defer l.Close()
	recs := collect(t, l, 0)
	if len(recs) != 1 || string(recs[0].Body) != "first-record" {
		t.Fatalf("recovered %+v", recs)
	}
	if lsn, err := l.AppendSync(1, []byte("resume")); err != nil || lsn != 2 {
		t.Fatalf("resume: lsn=%d err=%v", lsn, err)
	}
}

func TestReplayAfterAppendRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l := openLog(t, path)
	defer l.Close()
	if _, err := l.AppendSync(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Replay(0, func(Record) error { return nil }); err == nil {
		t.Fatal("Replay after Append should be rejected")
	}
}

func TestBodyCodecRoundTrip(t *testing.T) {
	var w BodyWriter
	w.Uint(42)
	w.Int(-7)
	w.String("héllo")
	w.Bytes([]byte{0, 1, 2})
	w.String("")
	r := NewBodyReader(w.Finish())
	if v := r.Uint(); v != 42 {
		t.Fatalf("uint = %d", v)
	}
	if v := r.Int(); v != -7 {
		t.Fatalf("int = %d", v)
	}
	if v := r.String(); v != "héllo" {
		t.Fatalf("string = %q", v)
	}
	if v := r.Bytes(); len(v) != 3 || v[2] != 2 {
		t.Fatalf("bytes = %v", v)
	}
	if v := r.String(); v != "" {
		t.Fatalf("empty string = %q", v)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	// Reading past the end fails stickily.
	if r.Uint(); r.Err() == nil {
		t.Fatal("over-read should set the error")
	}
}

func TestBodyReaderTruncated(t *testing.T) {
	var w BodyWriter
	w.String("a longer string payload")
	full := w.Finish()
	for cut := 0; cut < len(full); cut++ {
		r := NewBodyReader(full[:cut])
		_ = r.String()
		if r.Err() == nil {
			t.Fatalf("cut=%d: truncated body should error", cut)
		}
	}
}
