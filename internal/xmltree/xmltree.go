// Package xmltree provides the ordered XML document model used on both sides
// of the relational mapping: the shredder consumes trees, the publisher
// reconstructs them. It is a deliberately small DOM: elements, attributes and
// text, with document order preserved everywhere.
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind classifies a node.
type Kind uint8

// Node kinds. Attributes are modelled as nodes so the relational mapping can
// treat them as rows, matching the paper's shredding.
const (
	Element Kind = iota
	Attr
	Text
)

// String returns the kind name used in the relational `kind` column.
func (k Kind) String() string {
	switch k {
	case Element:
		return "elem"
	case Attr:
		return "attr"
	case Text:
		return "text"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "elem":
		return Element, nil
	case "attr":
		return Attr, nil
	case "text":
		return Text, nil
	default:
		return 0, fmt.Errorf("unknown node kind %q", s)
	}
}

// Node is one node of an ordered XML tree.
type Node struct {
	Kind Kind
	// Tag is the element tag or attribute name; empty for text nodes.
	Tag string
	// Value is the attribute value or text content; empty for elements.
	Value string
	// Attrs are attribute nodes in source order (elements only).
	Attrs []*Node
	// Children are element and text children in document order.
	Children []*Node
	// Parent is nil for the root.
	Parent *Node
}

// NewElement returns an element node.
func NewElement(tag string) *Node { return &Node{Kind: Element, Tag: tag} }

// NewText returns a text node.
func NewText(value string) *Node { return &Node{Kind: Text, Value: value} }

// NewAttr returns an attribute node.
func NewAttr(name, value string) *Node { return &Node{Kind: Attr, Tag: name, Value: value} }

// AddChild appends c to n's children and sets its parent.
func (n *Node) AddChild(c *Node) *Node {
	c.Parent = n
	n.Children = append(n.Children, c)
	return c
}

// AddAttr appends an attribute to n.
func (n *Node) AddAttr(name, value string) *Node {
	a := NewAttr(name, value)
	a.Parent = n
	n.Attrs = append(n.Attrs, a)
	return a
}

// SetAttr adds or replaces an attribute value.
func (n *Node) SetAttr(name, value string) {
	for _, a := range n.Attrs {
		if a.Tag == name {
			a.Value = value
			return
		}
	}
	n.AddAttr(name, value)
}

// GetAttr returns the value of the named attribute.
func (n *Node) GetAttr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Tag == name {
			return a.Value, true
		}
	}
	return "", false
}

// Size returns the number of nodes in the subtree, counting n, attributes
// and text nodes — the row count the subtree shreds into.
func (n *Node) Size() int {
	count := 1 + len(n.Attrs)
	for _, c := range n.Children {
		count += c.Size()
	}
	return count
}

// TextContent concatenates all descendant text, XPath string-value style.
func (n *Node) TextContent() string {
	switch n.Kind {
	case Text, Attr:
		return n.Value
	}
	var sb strings.Builder
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Kind == Text {
			sb.WriteString(m.Value)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return sb.String()
}

// ChildIndex returns n's position among its parent's children (0-based), or
// -1 for roots and attributes.
func (n *Node) ChildIndex() int {
	if n.Parent == nil || n.Kind == Attr {
		return -1
	}
	for i, c := range n.Parent.Children {
		if c == n {
			return i
		}
	}
	return -1
}

// Walk visits the subtree in document order: node, attributes, then
// children. It stops early when fn returns false.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, a := range n.Attrs {
		if !fn(a) {
			return false
		}
	}
	for _, c := range n.Children {
		if !c.Walk(fn) {
			return false
		}
	}
	return true
}

// Equal compares two trees structurally: kind, tag, value, attributes (in
// order) and children (in order).
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Tag != b.Tag || a.Value != b.Value {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i].Tag != b.Attrs[i].Tag || a.Attrs[i].Value != b.Attrs[i].Value {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Clone deep-copies the subtree. The clone's parent is nil.
func (n *Node) Clone() *Node {
	c := &Node{Kind: n.Kind, Tag: n.Tag, Value: n.Value}
	for _, a := range n.Attrs {
		c.AddAttr(a.Tag, a.Value)
	}
	for _, ch := range n.Children {
		c.AddChild(ch.Clone())
	}
	return c
}

// ParseOptions control parsing.
type ParseOptions struct {
	// KeepWhitespaceText retains text nodes that are entirely whitespace.
	// The default (false) drops them, matching how the paper's documents
	// were loaded (ignorable whitespace is not data).
	KeepWhitespaceText bool
}

// Parse reads one XML document and returns its root element.
func Parse(r io.Reader) (*Node, error) {
	return ParseWith(r, ParseOptions{})
}

// ParseString parses a document held in a string.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

// nodeArena hands out nodes from fixed-size chunks, one allocation per chunk
// instead of one per node. Chunks never move, so node pointers stay valid.
// A chunk is only reclaimed when every node carved from it is unreachable,
// which holds for parsing since documents are kept (and dropped) whole.
type nodeArena struct{ free []Node }

const arenaChunk = 256

func (a *nodeArena) new() *Node {
	if len(a.free) == 0 {
		a.free = make([]Node, arenaChunk)
	}
	n := &a.free[0]
	a.free = a.free[1:]
	return n
}

// ParseWith reads one XML document with explicit options.
func ParseWith(r io.Reader, opts ParseOptions) (*Node, error) {
	dec := xml.NewDecoder(r)
	var arena nodeArena
	var root *Node
	var cur *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xml parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := arena.new()
			n.Kind, n.Tag = Element, t.Name.Local
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue // namespace declarations are not data
				}
				at := arena.new()
				at.Kind, at.Tag, at.Value, at.Parent = Attr, a.Name.Local, a.Value, n
				n.Attrs = append(n.Attrs, at)
			}
			if cur == nil {
				if root != nil {
					return nil, fmt.Errorf("xml parse: multiple root elements")
				}
				root = n
			} else {
				cur.AddChild(n)
			}
			cur = n
		case xml.EndElement:
			if cur == nil {
				return nil, fmt.Errorf("xml parse: unbalanced end element %s", t.Name.Local)
			}
			cur = cur.Parent
		case xml.CharData:
			if cur == nil {
				continue // whitespace outside the root
			}
			s := string(t)
			if !opts.KeepWhitespaceText && strings.TrimSpace(s) == "" {
				continue
			}
			tn := arena.new()
			tn.Kind, tn.Value = Text, s
			cur.AddChild(tn)
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Not part of the data model.
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xml parse: no root element")
	}
	if cur != nil {
		return nil, fmt.Errorf("xml parse: unclosed element %s", cur.Tag)
	}
	return root, nil
}

// WriteXML serializes the subtree. Output is deterministic; attributes keep
// their stored order.
func (n *Node) WriteXML(w io.Writer) error {
	sw := &stickyWriter{w: w}
	n.write(sw)
	return sw.err
}

// String renders the subtree as XML.
func (n *Node) String() string {
	var sb strings.Builder
	n.WriteXML(&sb) // strings.Builder never errors
	return sb.String()
}

type stickyWriter struct {
	w   io.Writer
	err error
}

func (s *stickyWriter) WriteString(str string) {
	if s.err == nil {
		_, s.err = io.WriteString(s.w, str)
	}
}

func (n *Node) write(w *stickyWriter) {
	switch n.Kind {
	case Text:
		w.WriteString(escapeText(n.Value))
	case Attr:
		w.WriteString(n.Tag)
		w.WriteString(`="`)
		w.WriteString(escapeAttr(n.Value))
		w.WriteString(`"`)
	case Element:
		w.WriteString("<")
		w.WriteString(n.Tag)
		for _, a := range n.Attrs {
			w.WriteString(" ")
			a.write(w)
		}
		if len(n.Children) == 0 {
			w.WriteString("/>")
			return
		}
		w.WriteString(">")
		for _, c := range n.Children {
			c.write(w)
		}
		w.WriteString("</")
		w.WriteString(n.Tag)
		w.WriteString(">")
	}
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
var attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

func escapeText(s string) string { return textEscaper.Replace(s) }
func escapeAttr(s string) string { return attrEscaper.Replace(s) }

// Stats summarizes a tree's shape, used by the experiment harness to report
// workload parameters.
type Stats struct {
	Nodes     int // total nodes (elements + attributes + text)
	Elements  int
	Attrs     int
	Texts     int
	MaxDepth  int
	MaxFanout int
	Tags      []string // distinct element tags, sorted
}

// ComputeStats walks the tree once.
func ComputeStats(root *Node) Stats {
	s := Stats{}
	tags := map[string]bool{}
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		s.Nodes++
		if depth > s.MaxDepth {
			s.MaxDepth = depth
		}
		switch n.Kind {
		case Element:
			s.Elements++
			tags[n.Tag] = true
			fan := len(n.Children)
			if fan > s.MaxFanout {
				s.MaxFanout = fan
			}
			s.Nodes += len(n.Attrs)
			s.Attrs += len(n.Attrs)
			for _, c := range n.Children {
				walk(c, depth+1)
			}
		case Text:
			s.Texts++
		}
	}
	walk(root, 1)
	s.Tags = make([]string, 0, len(tags))
	for t := range tags {
		s.Tags = append(s.Tags, t)
	}
	sort.Strings(s.Tags)
	return s
}
