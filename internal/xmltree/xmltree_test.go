package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const sample = `<site>
  <regions>
    <namerica>
      <item id="i1" featured="yes">
        <name>widget</name>
        <price>3.50</price>
        <description>A <b>bold</b> widget &amp; more</description>
      </item>
      <item id="i2"><name>gadget</name></item>
    </namerica>
    <europe/>
  </regions>
</site>`

func mustParse(t *testing.T, s string) *Node {
	t.Helper()
	n, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return n
}

func TestParseBasics(t *testing.T) {
	root := mustParse(t, sample)
	if root.Tag != "site" || root.Kind != Element {
		t.Fatalf("root = %+v", root)
	}
	regions := root.Children[0]
	if regions.Tag != "regions" || len(regions.Children) != 2 {
		t.Fatalf("regions = %+v", regions)
	}
	na := regions.Children[0]
	if len(na.Children) != 2 {
		t.Fatalf("namerica has %d children", len(na.Children))
	}
	item := na.Children[0]
	if v, ok := item.GetAttr("id"); !ok || v != "i1" {
		t.Errorf("item id = %q, %v", v, ok)
	}
	if v, ok := item.GetAttr("featured"); !ok || v != "yes" {
		t.Errorf("featured = %q, %v", v, ok)
	}
	if _, ok := item.GetAttr("nope"); ok {
		t.Error("missing attr found")
	}
	// Mixed content: description has text, element, text.
	desc := item.Children[2]
	if len(desc.Children) != 3 {
		t.Fatalf("description children = %d", len(desc.Children))
	}
	if desc.Children[0].Kind != Text || desc.Children[1].Tag != "b" || desc.Children[2].Kind != Text {
		t.Error("mixed content order lost")
	}
	if got := desc.TextContent(); got != "A bold widget & more" {
		t.Errorf("TextContent = %q", got)
	}
}

func TestWhitespaceHandling(t *testing.T) {
	root := mustParse(t, "<a>\n  <b/>\n</a>")
	if len(root.Children) != 1 {
		t.Fatalf("whitespace text kept: %d children", len(root.Children))
	}
	kept, err := ParseWith(strings.NewReader("<a>\n  <b/>\n</a>"), ParseOptions{KeepWhitespaceText: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(kept.Children) != 3 {
		t.Fatalf("whitespace text dropped with KeepWhitespaceText: %d children", len(kept.Children))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"<a><b></a>",
		"<a>",
		"<a></a><b></b>",
		"not xml at all",
		"<a attr=></a>",
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) succeeded", s)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	root := mustParse(t, sample)
	out := root.String()
	back := mustParse(t, out)
	if !Equal(root, back) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", out, back.String())
	}
}

func TestSerializeEscaping(t *testing.T) {
	n := NewElement("a")
	n.AddAttr("q", `say "hi" & <bye>`)
	n.AddChild(NewText(`1 < 2 & 3 > 2`))
	out := n.String()
	want := `<a q="say &quot;hi&quot; &amp; &lt;bye&gt;">1 &lt; 2 &amp; 3 &gt; 2</a>`
	if out != want {
		t.Fatalf("escaped = %s, want %s", out, want)
	}
	back := mustParse(t, out)
	if !Equal(n, back) {
		t.Fatal("escape round trip lost data")
	}
}

func TestSelfClosing(t *testing.T) {
	n := NewElement("empty")
	n.AddAttr("a", "1")
	if got := n.String(); got != `<empty a="1"/>` {
		t.Errorf("self-closing = %s", got)
	}
}

func TestSizeAndStats(t *testing.T) {
	root := mustParse(t, sample)
	// site, regions, namerica, item(+2 attrs), name, text, price, text,
	// description, text, b, text, text, item(+1 attr), name, text, europe
	wantSize := 20
	if got := root.Size(); got != wantSize {
		t.Errorf("Size = %d, want %d", got, wantSize)
	}
	s := ComputeStats(root)
	if s.Nodes != wantSize {
		t.Errorf("Stats.Nodes = %d, want %d", s.Nodes, wantSize)
	}
	if s.Attrs != 3 || s.Elements != 11 || s.Texts != 6 {
		t.Errorf("Stats = %+v", s)
	}
	if s.MaxDepth != 7 { // site/regions/namerica/item/description/b/text
		t.Errorf("MaxDepth = %d", s.MaxDepth)
	}
	if len(s.Tags) != 9 { // site regions namerica europe item name price description b
		t.Errorf("Tags = %v", s.Tags)
	}
}

func TestChildIndexAndWalk(t *testing.T) {
	root := mustParse(t, sample)
	regions := root.Children[0]
	na := regions.Children[0]
	if na.ChildIndex() != 0 || regions.Children[1].ChildIndex() != 1 {
		t.Error("ChildIndex wrong")
	}
	if root.ChildIndex() != -1 {
		t.Error("root ChildIndex should be -1")
	}
	count := 0
	root.Walk(func(*Node) bool { count++; return true })
	if count != root.Size() {
		t.Errorf("Walk visited %d, Size = %d", count, root.Size())
	}
	// Early stop.
	count = 0
	root.Walk(func(*Node) bool { count++; return count < 5 })
	if count != 5 {
		t.Errorf("Walk early stop visited %d", count)
	}
}

func TestCloneAndEqual(t *testing.T) {
	root := mustParse(t, sample)
	c := root.Clone()
	if !Equal(root, c) {
		t.Fatal("clone not equal")
	}
	if c.Parent != nil {
		t.Error("clone has a parent")
	}
	c.Children[0].Children[0].Children[0].SetAttr("id", "changed")
	if Equal(root, c) {
		t.Fatal("mutating clone affected Equal")
	}
	if v, _ := root.Children[0].Children[0].Children[0].GetAttr("id"); v != "i1" {
		t.Fatal("mutating clone affected original")
	}
}

func TestSetAttr(t *testing.T) {
	n := NewElement("e")
	n.SetAttr("a", "1")
	n.SetAttr("a", "2")
	n.SetAttr("b", "3")
	if len(n.Attrs) != 2 {
		t.Fatalf("attrs = %d", len(n.Attrs))
	}
	if v, _ := n.GetAttr("a"); v != "2" {
		t.Errorf("a = %s", v)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{Element, Attr, Text} {
		back, err := ParseKind(k.String())
		if err != nil || back != k {
			t.Errorf("kind %v round trip: %v, %v", k, back, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("bogus kind parsed")
	}
}

// randTree builds a random tree for the round-trip property test.
func randTree(r *rand.Rand, depth int) *Node {
	n := NewElement(randName(r))
	for i := r.Intn(3); i > 0; i-- {
		n.AddAttr(randName(r)+"_a", randText(r))
	}
	if depth <= 0 {
		return n
	}
	for i := r.Intn(4); i > 0; i-- {
		if r.Intn(3) == 0 {
			// Text children; avoid whitespace-only strings which the parser
			// drops, and avoid adjacent text nodes which coalesce.
			if len(n.Children) == 0 || n.Children[len(n.Children)-1].Kind != Text {
				n.AddChild(NewText("t" + randText(r)))
			}
		} else {
			n.AddChild(randTree(r, depth-1))
		}
	}
	return n
}

func randName(r *rand.Rand) string {
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	return names[r.Intn(len(names))]
}

func randText(r *rand.Rand) string {
	chars := []rune{'x', 'y', '&', '<', '>', '"', ' ', 'é', '右'}
	n := r.Intn(6)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteRune(chars[r.Intn(len(chars))])
	}
	return sb.String()
}

// Property: serialize → parse is the identity on the data model.
func TestSerializeParseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randTree(r, 4)
		out := tree.String()
		back, err := ParseString(out)
		if err != nil {
			t.Logf("parse error on %s: %v", out, err)
			return false
		}
		return Equal(tree, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
