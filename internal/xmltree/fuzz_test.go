package xmltree

import "testing"

// FuzzParse checks that any XML the parser accepts survives a
// serialize/parse round trip on the data model.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"<a/>",
		`<a x="1"><b>text</b><c/></a>`,
		"<a>mixed <b>bold</b> tail</a>",
		"<a>&amp;&lt;&gt;</a>",
		"<a><a><a/></a></a>",
		"<a", "</a>", "", "<a></b>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		n, err := ParseString(input)
		if err != nil {
			return
		}
		back, err := ParseString(n.String())
		if err != nil {
			t.Fatalf("serialized form of %q does not parse: %v", input, err)
		}
		if !Equal(n, back) {
			t.Fatalf("round trip mismatch for %q", input)
		}
	})
}
