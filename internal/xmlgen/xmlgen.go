// Package xmlgen generates synthetic XML documents with controlled shape
// (size, fan-out, depth), standing in for the paper's document corpus. Two
// families mirror the workloads the paper's evaluation dimensions need:
//
//   - Catalog: an XMark-flavoured auction/catalog document (`site` root with
//     regional item lists) whose ordered item sequences drive the positional
//     and sibling-axis queries.
//   - Play: a Shakespeare-flavoured play (acts, scenes, speeches) whose deep
//     ordered structure drives reconstruction and update experiments.
//
// All generation is deterministic for a given seed.
package xmlgen

import (
	"fmt"
	"math/rand"
	"strings"

	"ordxml/internal/xmltree"
)

var words = []string{
	"quick", "brown", "fox", "lazy", "dog", "lorem", "ipsum", "dolor",
	"amber", "bridge", "copper", "delta", "ember", "forest", "granite",
	"harbor", "island", "jasper", "kernel", "lantern", "marble", "north",
	"onyx", "prairie", "quartz", "river", "summit", "timber", "umbra",
	"violet", "willow", "zephyr",
}

var keywords = []string{
	"rare", "vintage", "premium", "refurbished", "limited", "classic",
	"portable", "wireless", "organic", "handmade",
}

// CatalogConfig controls the catalog generator.
type CatalogConfig struct {
	// Regions is the number of region elements under <regions>.
	Regions int
	// ItemsPerRegion is the ordered item count per region — the main size
	// and fan-out knob.
	ItemsPerRegion int
	// KeywordsPerItem controls how many <keyword> elements appear inside
	// each item description (exercises the descendant axis).
	KeywordsPerItem int
	// DescriptionWords sets the length of each description's text payload.
	DescriptionWords int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultCatalog is a small, fast default used by examples and tests.
func DefaultCatalog() CatalogConfig {
	return CatalogConfig{Regions: 3, ItemsPerRegion: 50, KeywordsPerItem: 2, DescriptionWords: 12, Seed: 1}
}

var regionNames = []string{"namerica", "europe", "asia", "africa", "samerica", "australia"}

// Catalog generates the auction/catalog document.
func Catalog(cfg CatalogConfig) *xmltree.Node {
	if cfg.Regions <= 0 {
		cfg.Regions = 1
	}
	if cfg.Regions > len(regionNames) {
		cfg.Regions = len(regionNames)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	site := xmltree.NewElement("site")
	regions := site.AddChild(xmltree.NewElement("regions"))
	itemID := 0
	for ri := 0; ri < cfg.Regions; ri++ {
		region := regions.AddChild(xmltree.NewElement(regionNames[ri]))
		for ii := 0; ii < cfg.ItemsPerRegion; ii++ {
			region.AddChild(item(r, itemID, cfg))
			itemID++
		}
	}
	people := site.AddChild(xmltree.NewElement("people"))
	for pi := 0; pi < cfg.Regions*2; pi++ {
		p := people.AddChild(xmltree.NewElement("person"))
		p.AddAttr("id", fmt.Sprintf("p%d", pi))
		name := p.AddChild(xmltree.NewElement("name"))
		name.AddChild(xmltree.NewText(pick(r, words) + " " + pick(r, words)))
	}
	return site
}

func item(r *rand.Rand, id int, cfg CatalogConfig) *xmltree.Node {
	it := xmltree.NewElement("item")
	it.AddAttr("id", fmt.Sprintf("item%d", id))
	name := it.AddChild(xmltree.NewElement("name"))
	name.AddChild(xmltree.NewText(pick(r, words) + " " + pick(r, words)))
	price := it.AddChild(xmltree.NewElement("price"))
	price.AddChild(xmltree.NewText(fmt.Sprintf("%d.%02d", r.Intn(500)+1, r.Intn(100))))
	qty := it.AddChild(xmltree.NewElement("quantity"))
	qty.AddChild(xmltree.NewText(fmt.Sprintf("%d", r.Intn(10)+1)))
	desc := it.AddChild(xmltree.NewElement("description"))
	var sb strings.Builder
	for w := 0; w < cfg.DescriptionWords; w++ {
		if w > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(pick(r, words))
	}
	desc.AddChild(xmltree.NewText(sb.String()))
	for k := 0; k < cfg.KeywordsPerItem; k++ {
		kw := desc.AddChild(xmltree.NewElement("keyword"))
		kw.AddChild(xmltree.NewText(pick(r, keywords)))
	}
	return it
}

// PlayConfig controls the play generator.
type PlayConfig struct {
	Acts             int
	ScenesPerAct     int
	SpeechesPerScene int
	LinesPerSpeech   int
	Seed             int64
}

// DefaultPlay is a small, fast default.
func DefaultPlay() PlayConfig {
	return PlayConfig{Acts: 3, ScenesPerAct: 4, SpeechesPerScene: 10, LinesPerSpeech: 3, Seed: 1}
}

var speakers = []string{
	"HAMLET", "OPHELIA", "HORATIO", "GERTRUDE", "CLAUDIUS", "POLONIUS", "LAERTES",
}

// Play generates the play document.
func Play(cfg PlayConfig) *xmltree.Node {
	r := rand.New(rand.NewSource(cfg.Seed))
	play := xmltree.NewElement("PLAY")
	title := play.AddChild(xmltree.NewElement("TITLE"))
	word := pick(r, words)
	title.AddChild(xmltree.NewText("The Tragedy of " + strings.ToUpper(word[:1]) + word[1:]))
	for a := 1; a <= cfg.Acts; a++ {
		act := play.AddChild(xmltree.NewElement("ACT"))
		at := act.AddChild(xmltree.NewElement("TITLE"))
		at.AddChild(xmltree.NewText(fmt.Sprintf("ACT %d", a)))
		for sc := 1; sc <= cfg.ScenesPerAct; sc++ {
			scene := act.AddChild(xmltree.NewElement("SCENE"))
			st := scene.AddChild(xmltree.NewElement("TITLE"))
			st.AddChild(xmltree.NewText(fmt.Sprintf("SCENE %d", sc)))
			for sp := 0; sp < cfg.SpeechesPerScene; sp++ {
				speech := scene.AddChild(xmltree.NewElement("SPEECH"))
				speaker := speech.AddChild(xmltree.NewElement("SPEAKER"))
				speaker.AddChild(xmltree.NewText(pick(r, speakers)))
				for l := 0; l < cfg.LinesPerSpeech; l++ {
					line := speech.AddChild(xmltree.NewElement("LINE"))
					line.AddChild(xmltree.NewText(sentence(r, 6)))
				}
			}
		}
	}
	return play
}

// RandomConfig controls the arbitrary-shape generator used by property
// tests: any tag can nest under any other, attributes and mixed content
// appear randomly.
type RandomConfig struct {
	MaxDepth  int
	MaxFanout int
	Tags      []string
	Seed      int64
}

// DefaultRandom is a compact default for property tests.
func DefaultRandom(seed int64) RandomConfig {
	return RandomConfig{MaxDepth: 5, MaxFanout: 4,
		Tags: []string{"a", "b", "c", "d"}, Seed: seed}
}

// Random generates an arbitrary tree.
func Random(cfg RandomConfig) *xmltree.Node {
	r := rand.New(rand.NewSource(cfg.Seed))
	return randomNode(r, cfg, cfg.MaxDepth)
}

func randomNode(r *rand.Rand, cfg RandomConfig, depth int) *xmltree.Node {
	n := xmltree.NewElement(cfg.Tags[r.Intn(len(cfg.Tags))])
	for i := r.Intn(3); i > 0; i-- {
		n.SetAttr(pick(r, words), sentence(r, 2))
	}
	if depth <= 0 {
		return n
	}
	fan := r.Intn(cfg.MaxFanout + 1)
	for i := 0; i < fan; i++ {
		if r.Intn(4) == 0 {
			if len(n.Children) == 0 || n.Children[len(n.Children)-1].Kind != xmltree.Text {
				n.AddChild(xmltree.NewText(sentence(r, 3)))
			}
		} else {
			n.AddChild(randomNode(r, cfg, depth-1))
		}
	}
	return n
}

func pick(r *rand.Rand, list []string) string { return list[r.Intn(len(list))] }

func sentence(r *rand.Rand, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = pick(r, words)
	}
	return strings.Join(parts, " ")
}
