package xmlgen

import (
	"testing"

	"ordxml/internal/xmltree"
)

func TestCatalogShape(t *testing.T) {
	cfg := CatalogConfig{Regions: 2, ItemsPerRegion: 10, KeywordsPerItem: 3, DescriptionWords: 5, Seed: 7}
	doc := Catalog(cfg)
	if doc.Tag != "site" {
		t.Fatalf("root = %s", doc.Tag)
	}
	regions := doc.Children[0]
	if regions.Tag != "regions" || len(regions.Children) != 2 {
		t.Fatalf("regions = %d", len(regions.Children))
	}
	for _, region := range regions.Children {
		if len(region.Children) != 10 {
			t.Fatalf("region %s has %d items", region.Tag, len(region.Children))
		}
		for _, item := range region.Children {
			if item.Tag != "item" {
				t.Fatalf("unexpected child %s", item.Tag)
			}
			if _, ok := item.GetAttr("id"); !ok {
				t.Fatal("item lacks id")
			}
			// name, price, quantity, description in order.
			wantTags := []string{"name", "price", "quantity", "description"}
			for i, w := range wantTags {
				if item.Children[i].Tag != w {
					t.Fatalf("item child %d = %s, want %s", i, item.Children[i].Tag, w)
				}
			}
			desc := item.Children[3]
			kw := 0
			for _, c := range desc.Children {
				if c.Tag == "keyword" {
					kw++
				}
			}
			if kw != 3 {
				t.Fatalf("item has %d keywords", kw)
			}
		}
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a := Catalog(DefaultCatalog())
	b := Catalog(DefaultCatalog())
	if !xmltree.Equal(a, b) {
		t.Fatal("same seed produced different documents")
	}
	c := Catalog(CatalogConfig{Regions: 3, ItemsPerRegion: 50, KeywordsPerItem: 2, DescriptionWords: 12, Seed: 2})
	if xmltree.Equal(a, c) {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestCatalogScaling(t *testing.T) {
	small := xmltree.ComputeStats(Catalog(CatalogConfig{Regions: 1, ItemsPerRegion: 10, KeywordsPerItem: 1, DescriptionWords: 3, Seed: 1}))
	big := xmltree.ComputeStats(Catalog(CatalogConfig{Regions: 1, ItemsPerRegion: 100, KeywordsPerItem: 1, DescriptionWords: 3, Seed: 1}))
	if big.Nodes < small.Nodes*8 {
		t.Fatalf("scaling broken: %d vs %d nodes", small.Nodes, big.Nodes)
	}
}

func TestCatalogClamping(t *testing.T) {
	doc := Catalog(CatalogConfig{Regions: 100, ItemsPerRegion: 1, Seed: 1})
	if got := len(doc.Children[0].Children); got != len(regionNames) {
		t.Fatalf("regions = %d", got)
	}
	doc = Catalog(CatalogConfig{Regions: 0, ItemsPerRegion: 1, Seed: 1})
	if got := len(doc.Children[0].Children); got != 1 {
		t.Fatalf("regions = %d", got)
	}
}

func TestPlayShape(t *testing.T) {
	cfg := PlayConfig{Acts: 2, ScenesPerAct: 3, SpeechesPerScene: 4, LinesPerSpeech: 2, Seed: 5}
	doc := Play(cfg)
	if doc.Tag != "PLAY" {
		t.Fatalf("root = %s", doc.Tag)
	}
	acts := 0
	for _, c := range doc.Children {
		if c.Tag == "ACT" {
			acts++
			scenes := 0
			for _, s := range c.Children {
				if s.Tag == "SCENE" {
					scenes++
					speeches := 0
					for _, sp := range s.Children {
						if sp.Tag == "SPEECH" {
							speeches++
							if sp.Children[0].Tag != "SPEAKER" {
								t.Fatal("speech lacks speaker first")
							}
							if len(sp.Children) != 1+cfg.LinesPerSpeech {
								t.Fatalf("speech children = %d", len(sp.Children))
							}
						}
					}
					if speeches != cfg.SpeechesPerScene {
						t.Fatalf("speeches = %d", speeches)
					}
				}
			}
			if scenes != cfg.ScenesPerAct {
				t.Fatalf("scenes = %d", scenes)
			}
		}
	}
	if acts != cfg.Acts {
		t.Fatalf("acts = %d", acts)
	}
}

func TestRandomDeterministicAndParsable(t *testing.T) {
	a := Random(DefaultRandom(3))
	b := Random(DefaultRandom(3))
	if !xmltree.Equal(a, b) {
		t.Fatal("same seed differs")
	}
	// Every generated tree must survive a serialize/parse round trip.
	for seed := int64(0); seed < 30; seed++ {
		tree := Random(DefaultRandom(seed))
		back, err := xmltree.ParseString(tree.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !xmltree.Equal(tree, back) {
			t.Fatalf("seed %d: round trip mismatch", seed)
		}
	}
}
