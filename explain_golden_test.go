package ordxml

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// explainDoc is a small deterministic catalog slice: enough items for the
// E3-representative queries (position predicate, range, following-sibling)
// to exercise index scans and positional post-processing.
const explainDoc = `<site><regions><namerica>` +
	`<item id="i1"><name>a</name><quantity>1</quantity></item>` +
	`<item id="i2"><name>b</name><quantity>2</quantity></item>` +
	`<item id="i3"><name>c</name><quantity>3</quantity></item>` +
	`<item id="i4"><name>d</name><quantity>4</quantity></item>` +
	`<item id="i5"><name>e</name><quantity>5</quantity></item>` +
	`</namerica></regions></site>`

// goldenQueries are the representative E3 shapes named by the golden files.
var goldenQueries = []struct {
	id    string
	xpath string
}{
	{"Q2-position", "/site/regions/namerica/item[3]"},
	{"Q3-range", "/site/regions/namerica/item[position() <= 2]"},
	{"Q4-following-sibling", "/site/regions/namerica/item[2]/following-sibling::item"},
}

// volatileTime matches the wall-time field of EXPLAIN ANALYZE annotations
// and the total line; plans are otherwise deterministic.
var volatileTime = regexp.MustCompile(`time=[0-9][^ )\n]*`)

func normalizeAnalyze(s string) string {
	return volatileTime.ReplaceAllString(s, "time=<T>")
}

// TestExplainGolden locks the EXPLAIN and EXPLAIN ANALYZE output for the
// representative ordered queries under every encoding. Each golden records,
// per query: the generated SQL statements, the physical plan of each, and —
// for the parameter-free statements — the instrumented EXPLAIN ANALYZE tree
// with times normalized. Regenerate with `go test -run TestExplainGolden
// -update`.
func TestExplainGolden(t *testing.T) {
	for _, enc := range []Encoding{Global, Local, Dewey} {
		t.Run(enc.String(), func(t *testing.T) {
			store, err := Open(Options{Encoding: enc})
			if err != nil {
				t.Fatal(err)
			}
			doc, err := store.LoadString("golden", explainDoc)
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			for _, q := range goldenQueries {
				fmt.Fprintf(&out, "== %s %s ==\n", q.id, q.xpath)
				sqls, err := store.ExplainQuery(doc, q.xpath)
				if err != nil {
					t.Fatalf("%s: %v", q.id, err)
				}
				for i, sql := range sqls {
					fmt.Fprintf(&out, "-- statement %d\n%s\n", i+1, sql)
					plan, err := store.ExplainSQL(sql)
					if err != nil {
						t.Fatalf("%s explain stmt %d: %v", q.id, i+1, err)
					}
					out.WriteString(plan)
					if !strings.Contains(sql, "?") {
						analyzed, err := store.ExplainAnalyzeSQL(sql)
						if err != nil {
							t.Fatalf("%s analyze stmt %d: %v", q.id, i+1, err)
						}
						out.WriteString("-- analyze\n")
						out.WriteString(normalizeAnalyze(analyzed))
					}
				}
				out.WriteByte('\n')
			}
			got := out.String()

			path := filepath.Join("testdata", "explain_"+enc.String()+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s\n--- got ---\n%s\n--- want ---\n%s", enc, got, want)
			}
		})
	}
}

// TestExplainAnalyzeActualRows verifies the acceptance path end to end: an
// ordered E3 query's generated SQL runs under EXPLAIN ANALYZE in all three
// encodings and reports per-operator actual rows.
func TestExplainAnalyzeActualRows(t *testing.T) {
	for _, enc := range []Encoding{Global, Local, Dewey} {
		store, err := Open(Options{Encoding: enc})
		if err != nil {
			t.Fatal(err)
		}
		doc, err := store.LoadString("golden", explainDoc)
		if err != nil {
			t.Fatal(err)
		}
		sqls, err := store.ExplainQuery(doc, "/site/regions/namerica/item[3]")
		if err != nil {
			t.Fatal(err)
		}
		analyzed, err := store.ExplainAnalyzeSQL(sqls[0])
		if err != nil {
			t.Fatalf("%s: %v", enc, err)
		}
		if !strings.Contains(analyzed, "actual rows=") || !strings.Contains(analyzed, "loops=1") {
			t.Errorf("%s: missing actuals:\n%s", enc, analyzed)
		}
		if !strings.Contains(analyzed, "Total: rows=") {
			t.Errorf("%s: missing total line:\n%s", enc, analyzed)
		}
	}
}

// TestQueryTraceStages checks the XPath pipeline breakdown covers the
// expected stages for a positional query.
func TestQueryTraceStages(t *testing.T) {
	store, err := Open(Options{Encoding: Dewey})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := store.LoadString("golden", explainDoc)
	if err != nil {
		t.Fatal(err)
	}
	nodes, stages, err := store.QueryTrace(doc, "/site/regions/namerica/item[3]")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 {
		t.Fatalf("matches = %d, want 1", len(nodes))
	}
	seen := map[string]bool{}
	for _, st := range stages {
		seen[st.Name] = true
	}
	for _, want := range []string{"parse", "translate", "exec", "post", "sort"} {
		if !seen[want] {
			t.Errorf("stage %q missing from trace %v", want, stages)
		}
	}
	m := store.Metrics()
	if m.Counters["xpath.queries"] == 0 {
		t.Error("xpath.queries not counted")
	}
	if m.Histograms["xpath.stage.exec"].Count == 0 {
		t.Error("xpath.stage.exec histogram empty")
	}
}
