package ordxml

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ordxml/internal/failpoint"
)

// openDur opens a durable Dewey store in dir, failing the test on error.
func openDur(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := OpenDurable(dir, Options{Encoding: Dewey})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return s
}

// fingerprint serializes every stored document into one comparable string.
func fingerprint(t *testing.T, s *Store) string {
	t.Helper()
	docs, err := s.Documents()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, d := range docs {
		xml, err := s.SerializeDocument(d.ID)
		if err != nil {
			t.Fatalf("serialize doc %d: %v", d.ID, err)
		}
		fmt.Fprintf(&sb, "%d:%s:%s\n", d.ID, d.Name, xml)
	}
	return sb.String()
}

// mustIntact fails the test when the store has integrity violations.
func mustIntact(t *testing.T, s *Store) {
	t.Helper()
	problems, err := s.CheckIntegrity()
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("integrity violations: %v", problems)
	}
}

func TestOpenDurableFreshEmptyWAL(t *testing.T) {
	dir := t.TempDir()
	s := openDur(t, dir)
	if !s.Durable() {
		t.Fatal("store not durable")
	}
	if st, ok := s.WALStats(); !ok || st.LastLSN != 0 {
		t.Fatalf("fresh WAL stats = %+v, %v", st, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with an empty WAL and no snapshot.
	s = openDur(t, dir)
	defer s.Close()
	docs, err := s.Documents()
	if err != nil || len(docs) != 0 {
		t.Fatalf("documents = %v, %v", docs, err)
	}
}

func TestDurableRecoversWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openDur(t, dir)
	doc, err := s.LoadString("hamlet", testDoc)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := s.Query(doc, "/PLAY/ACT[1]/SCENE[1]/SPEECH[1]")
	if err != nil || len(hits) != 1 {
		t.Fatalf("query: %v, %v", hits, err)
	}
	if _, err := s.Insert(doc, hits[0].ID, After, "<SPEECH><SPEAKER>GHOST</SPEAKER></SPEECH>"); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, s)
	st, _ := s.WALStats()
	if st.Records != 2 || st.DurableLSN != 2 {
		t.Fatalf("WAL stats = %+v", st)
	}
	s.Close()

	// No checkpoint ever ran: recovery replays the whole log into an empty
	// store.
	s = openDur(t, dir)
	defer s.Close()
	if got := fingerprint(t, s); got != want {
		t.Fatalf("recovered state differs:\n got %q\nwant %q", got, want)
	}
	mustIntact(t, s)
}

func TestDurableReplayEveryMutationKind(t *testing.T) {
	dir := t.TempDir()
	s := openDur(t, dir)
	doc, err := s.LoadString("hamlet", testDoc)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := s.LoadString("scratch", "<R><A/></R>")
	if err != nil {
		t.Fatal(err)
	}
	// Insert.
	hits, err := s.Query(doc, "/PLAY/ACT[2]/SCENE[1]/SPEECH[1]")
	if err != nil || len(hits) != 1 {
		t.Fatalf("query: %v, %v", hits, err)
	}
	speech := hits[0].ID
	if _, err := s.Insert(doc, speech, Before, "<SPEECH><SPEAKER>YORICK</SPEAKER><LINE>alas</LINE></SPEECH>"); err != nil {
		t.Fatal(err)
	}
	// Delete.
	hits, err = s.Query(doc, "/PLAY/ACT[1]/SCENE[1]/SPEECH[2]")
	if err != nil || len(hits) != 1 {
		t.Fatalf("query: %v, %v", hits, err)
	}
	if _, err := s.Delete(doc, hits[0].ID); err != nil {
		t.Fatal(err)
	}
	// SetValue and Rename.
	hits, err = s.Query(doc, "/PLAY/TITLE/text()")
	if err != nil || len(hits) != 1 {
		t.Fatalf("query: %v, %v", hits, err)
	}
	if err := s.SetValue(doc, hits[0].ID, "The Tragedy of Hamlet"); err != nil {
		t.Fatal(err)
	}
	hits, err = s.Query(doc, "/PLAY/TITLE")
	if err != nil || len(hits) != 1 {
		t.Fatalf("query: %v, %v", hits, err)
	}
	if err := s.Rename(doc, hits[0].ID, "HEADLINE"); err != nil {
		t.Fatal(err)
	}
	// Move.
	hits, err = s.Query(doc, "/PLAY/ACT[2]")
	if err != nil || len(hits) != 1 {
		t.Fatalf("query: %v, %v", hits, err)
	}
	act2 := hits[0].ID
	hits, err = s.Query(doc, "/PLAY/ACT[1]")
	if err != nil || len(hits) != 1 {
		t.Fatalf("query: %v, %v", hits, err)
	}
	if _, err := s.Move(doc, act2, hits[0].ID, Before); err != nil {
		t.Fatal(err)
	}
	// Raw DML through the logged escape hatch.
	if n, err := s.Exec(`INSERT INTO store_meta VALUES (?, ?)`, "test_marker", "survived"); err != nil || n != 1 {
		t.Fatalf("exec: n=%d err=%v", n, err)
	}
	// Drop.
	if err := s.Drop(scratch); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, s)
	s.Close()

	s = openDur(t, dir)
	defer s.Close()
	if got := fingerprint(t, s); got != want {
		t.Fatalf("recovered state differs:\n got %q\nwant %q", got, want)
	}
	rows, err := s.SQL(`SELECT v FROM store_meta WHERE k = ?`, "test_marker")
	if err != nil || len(rows.Values) != 1 || rows.Values[0][0] != "survived" {
		t.Fatalf("exec record not replayed: %v, %v", rows, err)
	}
	mustIntact(t, s)
}

func TestDurableCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	s := openDur(t, dir)
	doc, err := s.LoadString("hamlet", testDoc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	hits, err := s.Query(doc, "/PLAY/ACT[1]")
	if err != nil || len(hits) != 1 {
		t.Fatalf("query: %v, %v", hits, err)
	}
	if _, err := s.Insert(doc, hits[0].ID, LastChild, "<EPILOGUE/>"); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, s)
	st, _ := s.WALStats()
	if st.Rotations != 1 {
		t.Fatalf("rotations = %d", st.Rotations)
	}
	s.Close()

	s = openDur(t, dir)
	defer s.Close()
	if got := fingerprint(t, s); got != want {
		t.Fatalf("recovered state differs:\n got %q\nwant %q", got, want)
	}
	// Only the post-checkpoint insert replays, not the load.
	if replayed := s.Metrics().Counters["wal.replay.records"]; replayed != 1 {
		t.Fatalf("replayed %d records, want 1", replayed)
	}
	// LSNs continue past the checkpoint after recovery.
	if _, err := s.Insert(doc, 1, LastChild, "<CODA/>"); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.WALStats(); st.LastLSN != 3 {
		t.Fatalf("post-recovery LSN = %d, want 3", st.LastLSN)
	}
	mustIntact(t, s)
}

func TestDurableTornTailDropsLastOp(t *testing.T) {
	dir := t.TempDir()
	s := openDur(t, dir)
	doc, err := s.LoadString("hamlet", testDoc)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := s.Query(doc, "/PLAY/ACT[1]")
	if err != nil || len(hits) != 1 {
		t.Fatalf("query: %v, %v", hits, err)
	}
	want := fingerprint(t, s)
	if _, err := s.Insert(doc, hits[0].ID, LastChild, "<LOST/>"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Chop one byte off the log: the final record becomes a torn tail, as
	// if the crash landed mid-write before the insert was acknowledged.
	walPath := filepath.Join(dir, "wal.log")
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, st.Size()-1); err != nil {
		t.Fatal(err)
	}

	s = openDur(t, dir)
	defer s.Close()
	if got := fingerprint(t, s); got != want {
		t.Fatalf("recovered state differs:\n got %q\nwant %q", got, want)
	}
	mustIntact(t, s)
}

func TestDurableInterruptedCheckpoint(t *testing.T) {
	// An error injected at any checkpoint stage must leave a store that
	// closes and recovers to exactly the pre-checkpoint state.
	for _, fp := range []string{
		"checkpoint.before-snapshot",
		"checkpoint.before-rename",
		"checkpoint.after-rename",
		"wal.rotate.before",
		"wal.rotate.before-rename",
	} {
		t.Run(fp, func(t *testing.T) {
			failpoint.Reset()
			t.Cleanup(failpoint.Reset)
			dir := t.TempDir()
			s := openDur(t, dir)
			doc, err := s.LoadString("hamlet", testDoc)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.SetValue(doc, 3, "renamed play"); err != nil {
				t.Fatal(err)
			}
			want := fingerprint(t, s)
			if err := failpoint.Arm(fp, failpoint.Error, 1); err != nil {
				t.Fatal(err)
			}
			if err := s.Checkpoint(); !errors.Is(err, failpoint.ErrInjected) {
				t.Fatalf("checkpoint error = %v, want injected", err)
			}
			s.Close()

			s = openDur(t, dir)
			defer s.Close()
			if got := fingerprint(t, s); got != want {
				t.Fatalf("recovered state differs:\n got %q\nwant %q", got, want)
			}
			mustIntact(t, s)
			// The store must still checkpoint cleanly afterwards.
			if err := s.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after recovery: %v", err)
			}
		})
	}
}

func TestDurableFailedOpReplaysAsFailure(t *testing.T) {
	dir := t.TempDir()
	s := openDur(t, dir)
	doc, err := s.LoadString("hamlet", testDoc)
	if err != nil {
		t.Fatal(err)
	}
	// The operation is logged before the engine discovers it is invalid;
	// replay must re-fail it identically instead of aborting recovery.
	if _, err := s.Insert(doc, 99999, LastChild, "<X/>"); err == nil {
		t.Fatal("insert at a bogus target succeeded")
	}
	want := fingerprint(t, s)
	s.Close()

	s = openDur(t, dir)
	defer s.Close()
	if got := fingerprint(t, s); got != want {
		t.Fatalf("recovered state differs:\n got %q\nwant %q", got, want)
	}
	if n := s.Metrics().Counters["wal.replay.op_errors"]; n != 1 {
		t.Fatalf("replay op errors = %d, want 1", n)
	}
	mustIntact(t, s)
}

func TestDurableWALFailureRefusesMutations(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	dir := t.TempDir()
	s := openDur(t, dir)
	defer s.Close()
	doc, err := s.LoadString("hamlet", testDoc)
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Arm("wal.sync.before-fsync", failpoint.Error, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetValue(doc, 3, "doomed"); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	// The log is fail-stop: every further mutation is refused, reads work.
	if err := s.SetValue(doc, 3, "refused"); err == nil {
		t.Fatal("mutation accepted after WAL failure")
	}
	if _, err := s.Query(doc, "/PLAY/TITLE"); err != nil {
		t.Fatalf("read after WAL failure: %v", err)
	}
}

func TestDurableConcurrentMutations(t *testing.T) {
	dir := t.TempDir()
	s := openDur(t, dir)
	const writers, per = 4, 8
	docs := make([]DocID, writers)
	for i := range docs {
		var err error
		if docs[i], err = s.LoadString(fmt.Sprintf("doc-%d", i), "<R><A>seed</A></R>"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			doc := docs[w]
			hits, err := s.Query(doc, "/R/A")
			if err != nil || len(hits) != 1 {
				errs <- fmt.Errorf("writer %d: query: %v, %v", w, hits, err)
				return
			}
			for i := 0; i < per; i++ {
				if _, err := s.Insert(doc, hits[0].ID, After, fmt.Sprintf("<B n=%q/>", fmt.Sprint(i))); err != nil {
					errs <- fmt.Errorf("writer %d insert %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := fingerprint(t, s)
	st, _ := s.WALStats()
	if wantRecs := int64(writers*per + writers); st.Records != wantRecs || st.DurableLSN != uint64(wantRecs) {
		t.Fatalf("WAL stats = %+v, want %d records", st, wantRecs)
	}
	s.Close()

	s = openDur(t, dir)
	defer s.Close()
	if got := fingerprint(t, s); got != want {
		t.Fatalf("recovered state differs:\n got %q\nwant %q", got, want)
	}
	mustIntact(t, s)
}

func TestMemoryStoreHasNoDurability(t *testing.T) {
	s, err := Open(Options{Encoding: Global})
	if err != nil {
		t.Fatal(err)
	}
	if s.Durable() {
		t.Fatal("memory store claims durability")
	}
	if _, ok := s.WALStats(); ok {
		t.Fatal("memory store has WAL stats")
	}
	if err := s.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a memory store should fail")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close on a memory store: %v", err)
	}
}

func TestDurableReopenKeepsEncodingOptions(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDurable(dir, Options{Encoding: Local, Gap: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadString("d", "<R/>"); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Mismatched opts on reopen are ignored: the snapshot's encoding wins.
	s, err = OpenDurable(dir, Options{Encoding: Global})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Encoding() != Local {
		t.Fatalf("encoding after reopen = %v, want Local", s.Encoding())
	}
}
