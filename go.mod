module ordxml

go 1.22
