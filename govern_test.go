package ordxml

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"ordxml/internal/failpoint"
)

// Governance tests at the Store level: cancellation and deadlines, the
// session query timeout, memory budgets, admission control and the degraded
// read-only mode. The failure vocabulary is typed — every assertion here
// goes through errors.Is against the public sentinels.

// bigDoc builds a flat document with n <item> children, large enough that
// its segment scans cross the executor's poll interval.
func bigDoc(n int) string {
	var sb strings.Builder
	sb.WriteString("<R>")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "<item><k>key%d</k><v>value%d</v></item>", i, i)
	}
	sb.WriteString("</R>")
	return sb.String()
}

// waitForGoroutines polls until the goroutine count returns to the baseline,
// dumping all stacks on failure.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
		runtime.NumGoroutine(), base, buf[:n])
}

// TestQueryDeadlineAborts is the acceptance check: an XPath query under a
// 1 ms deadline aborts with ErrDeadlineExceeded and leaks nothing. The short
// sleep guarantees the deadline has fired before the query starts, so the
// test asserts behavior, not scheduling luck.
func TestQueryDeadlineAborts(t *testing.T) {
	s, err := Open(Options{Encoding: Dewey})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := s.LoadString("big", bigDoc(2000))
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	if _, err := s.QueryCtx(ctx, doc, "/R/item/k"); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	if _, err := s.QueryValuesCtx(ctx, doc, "/R/item/v"); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("QueryValuesCtx: want ErrDeadlineExceeded, got %v", err)
	}
	if _, err := s.SerializeDocumentCtx(ctx, doc); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("SerializeDocumentCtx: want ErrDeadlineExceeded, got %v", err)
	}
	waitForGoroutines(t, base)
	// The same queries complete once the deadline is gone.
	if _, err := s.Query(doc, "/R/item/k"); err != nil {
		t.Fatalf("undeadlined query: %v", err)
	}
}

func TestQueryCancellation(t *testing.T) {
	s, err := Open(Options{Encoding: Global})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := s.LoadString("big", bigDoc(1500))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.QueryCtx(ctx, doc, "/R/item"); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	// Mutations observe cancellation before any durable effect.
	if _, err := s.InsertCtx(ctx, doc, 1, LastChild, "<item/>"); !errors.Is(err, ErrCanceled) {
		t.Fatalf("InsertCtx: want ErrCanceled, got %v", err)
	}
}

// TestSessionQueryTimeout exercises SetQueryTimeout: an unreachable deadline
// lets queries through, a nanosecond one kills them, and a caller-supplied
// deadline always wins over the session default.
func TestSessionQueryTimeout(t *testing.T) {
	s, err := Open(Options{Encoding: Dewey})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := s.LoadString("big", bigDoc(1500))
	if err != nil {
		t.Fatal(err)
	}
	s.SetQueryTimeout(time.Minute)
	if got := s.QueryTimeout(); got != time.Minute {
		t.Fatalf("QueryTimeout = %v", got)
	}
	if _, err := s.Query(doc, "/R/item"); err != nil {
		t.Fatalf("query under generous timeout: %v", err)
	}
	s.SetQueryTimeout(time.Nanosecond)
	if _, err := s.Query(doc, "/R/item"); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	// A caller context with its own (generous) deadline wins.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := s.QueryCtx(ctx, doc, "/R/item"); err != nil {
		t.Fatalf("caller deadline should win: %v", err)
	}
	s.SetQueryTimeout(0)
	if _, err := s.Query(doc, "/R/item"); err != nil {
		t.Fatalf("after removing timeout: %v", err)
	}
}

// TestCancellationStorm runs N readers whose contexts are canceled at random
// against one writer, under all three encodings. Every reader outcome must
// be clean: either results or a typed cancellation error; afterwards the
// store must pass the deep integrity check and all goroutines must be gone.
func TestCancellationStorm(t *testing.T) {
	for _, enc := range []Encoding{Global, Local, Dewey} {
		enc := enc
		t.Run(enc.String(), func(t *testing.T) {
			s, err := Open(Options{Encoding: enc, Gap: 4})
			if err != nil {
				t.Fatal(err)
			}
			doc, err := s.LoadString("storm", bigDoc(300))
			if err != nil {
				t.Fatal(err)
			}
			base := runtime.NumGoroutine()

			var stop atomic.Bool
			var writer sync.WaitGroup
			writer.Add(1)
			go func() {
				defer writer.Done()
				var live []NodeID
				for i := 0; !stop.Load(); i++ {
					rep, err := s.Insert(doc, 1, LastChild, fmt.Sprintf("<item><k>w%d</k></item>", i))
					if err != nil {
						t.Errorf("writer insert: %v", err)
						return
					}
					live = append(live, rep.NewID)
					if len(live) > 4 {
						if _, err := s.Delete(doc, live[0]); err != nil {
							t.Errorf("writer delete: %v", err)
							return
						}
						live = live[1:]
					}
				}
			}()

			const readers = 4
			var rg sync.WaitGroup
			rg.Add(readers)
			for r := 0; r < readers; r++ {
				go func(seed int64) {
					defer rg.Done()
					rnd := rand.New(rand.NewSource(seed))
					for i := 0; i < 40; i++ {
						ctx, cancel := context.WithCancel(context.Background())
						go func(d time.Duration) {
							time.Sleep(d)
							cancel()
						}(time.Duration(rnd.Intn(2000)) * time.Microsecond)
						var err error
						switch i % 3 {
						case 0:
							_, err = s.QueryCtx(ctx, doc, "/R/item/k")
						case 1:
							_, err = s.QueryValuesCtx(ctx, doc, "/R/item/k")
						default:
							_, err = s.SerializeDocumentCtx(ctx, doc)
						}
						if err != nil && !errors.Is(err, ErrCanceled) && !errors.Is(err, ErrDeadlineExceeded) {
							t.Errorf("reader: untyped error %v", err)
							cancel()
							return
						}
						cancel()
					}
				}(int64(r) + 1)
			}
			rg.Wait()
			stop.Store(true)
			writer.Wait()
			waitForGoroutines(t, base)
			mustIntact(t, s)
		})
	}
}

// TestMemoryBudgetAbortsQuery caps the per-request footprint low enough that
// a scan of the document blows it, and checks the typed error, the metrics,
// and that removing the budget restores service.
func TestMemoryBudgetAbortsQuery(t *testing.T) {
	s, err := Open(Options{Encoding: Global})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := s.LoadString("big", bigDoc(1500))
	if err != nil {
		t.Fatal(err)
	}
	s.SetMemoryBudget(4 * 1024)
	if got := s.MemoryBudget(); got != 4*1024 {
		t.Fatalf("MemoryBudget = %d", got)
	}
	if _, err := s.Query(doc, "/R/item"); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("want ErrMemoryBudget, got %v", err)
	}
	m := s.Metrics()
	if m.Counters["mem.budget_aborts"] < 1 {
		t.Fatalf("budget_aborts = %d", m.Counters["mem.budget_aborts"])
	}
	if m.Counters["mem.charged_bytes"] == 0 {
		t.Fatal("no bytes charged")
	}
	s.SetMemoryBudget(0)
	if _, err := s.Query(doc, "/R/item"); err != nil {
		t.Fatalf("after removing budget: %v", err)
	}
	mustIntact(t, s)
}

// TestAdmissionControlSheds saturates a one-slot gate with concurrent
// serializations; the overflow must be shed with ErrOverloaded, and removing
// the gate restores unbounded admission.
func TestAdmissionControlSheds(t *testing.T) {
	s, err := Open(Options{Encoding: Dewey})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := s.LoadString("big", bigDoc(3000))
	if err != nil {
		t.Fatal(err)
	}
	s.SetAdmissionLimit(1, 0, 0)

	const n = 6
	var wg sync.WaitGroup
	var ok, shed, other atomic.Int64
	start := make(chan struct{})
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			<-start
			_, err := s.SerializeDocumentCtx(context.Background(), doc)
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				shed.Add(1)
			default:
				other.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("untyped failures: %d", other.Load())
	}
	if ok.Load() == 0 || shed.Load() == 0 {
		t.Fatalf("ok = %d, shed = %d; want both nonzero", ok.Load(), shed.Load())
	}
	m := s.Metrics()
	if m.Counters["admission.shed"] != shed.Load() {
		t.Fatalf("admission.shed = %d, want %d", m.Counters["admission.shed"], shed.Load())
	}
	if m.Gauges["admission.active"] != 0 {
		t.Fatalf("admission.active = %d after drain", m.Gauges["admission.active"])
	}
	// Remove the gate: everything admitted again.
	s.SetAdmissionLimit(0, 0, 0)
	if _, err := s.SerializeDocument(doc); err != nil {
		t.Fatalf("after removing gate: %v", err)
	}
}

// TestWALFailureDegradesToReadOnly is the degraded-mode acceptance test: a
// WAL append failure flips the store to read-only — the failing mutation
// reports the injected I/O error, later mutations report ErrReadOnly, reads
// keep serving, health reports the degradation — and a reopen recovers.
func TestWALFailureDegradesToReadOnly(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	dir := t.TempDir()
	s := openDur(t, dir)
	doc, err := s.LoadString("hamlet", testDoc)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, s)

	if err := failpoint.Arm("wal.sync.before-fsync", failpoint.Error, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetValue(doc, 3, "doomed"); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("first mutation: want injected error, got %v", err)
	}
	if ok, cause := s.Degraded(); !ok || cause == "" {
		t.Fatalf("Degraded = %v, %q", ok, cause)
	}
	// Every further mutation — across all entry points — is typed ErrReadOnly.
	if err := s.SetValue(doc, 3, "refused"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("SetValue while degraded: %v", err)
	}
	if _, err := s.Insert(doc, 1, LastChild, "<x/>"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Insert while degraded: %v", err)
	}
	if err := s.Drop(doc); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Drop while degraded: %v", err)
	}
	if _, err := s.Exec(`DELETE FROM xd_nodes WHERE doc = -1`); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Exec while degraded: %v", err)
	}
	// Reads keep serving the pre-failure state.
	if got := fingerprint(t, s); got != want {
		t.Fatalf("degraded reads differ:\n got %q\nwant %q", got, want)
	}
	// Health and the readiness gauge report it.
	var degradedLine bool
	for _, p := range s.Health() {
		if strings.Contains(p, "degraded") {
			degradedLine = true
		}
	}
	if !degradedLine {
		t.Fatalf("Health() = %v, want a degraded line", s.Health())
	}
	if got := s.Metrics().Gauges["store.degraded"]; got != 1 {
		t.Fatalf("store.degraded gauge = %d", got)
	}
	s.Close()

	// Reopen: recovery replays the log; the store is healthy, consistent and
	// writable again. The doomed record failed before its fsync but after the
	// file write, so replay may legitimately surface either state — the
	// integrity check, not the fingerprint, is the recovery contract here.
	s = openDur(t, dir)
	defer s.Close()
	if ok, _ := s.Degraded(); ok {
		t.Fatal("reopened store still degraded")
	}
	mustIntact(t, s)
	if err := s.SetValue(doc, 3, "recovered"); err != nil {
		t.Fatalf("mutation after reopen: %v", err)
	}
}

// TestPageWriteFailureDegradesStore injects an ENOSPC on the page file under
// a buffer-pooled store: the checkpoint's flush fails, the store degrades,
// reads keep serving, and a reopen recovers from the WAL.
func TestPageWriteFailureDegradesStore(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	dir := t.TempDir()
	s := openPaged(t, dir, 16, Dewey)
	doc, err := s.LoadString("hamlet", testDoc)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, s)

	if err := failpoint.Arm("pagefile.write", failpoint.Enospc, 1); err != nil {
		t.Fatal(err)
	}
	err = s.Checkpoint()
	if err == nil {
		t.Fatal("checkpoint succeeded through a full disk")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("checkpoint error does not carry ENOSPC: %v", err)
	}
	if ok, cause := s.Degraded(); !ok || !strings.Contains(cause, "page write failed") {
		t.Fatalf("Degraded = %v, %q", ok, cause)
	}
	if err := s.SetValue(doc, 3, "refused"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("mutation while degraded: %v", err)
	}
	if got := fingerprint(t, s); got != want {
		t.Fatalf("degraded reads differ:\n got %q\nwant %q", got, want)
	}
	s.Close()

	s2 := openPaged(t, dir, 16, Dewey)
	if ok, _ := s2.Degraded(); ok {
		t.Fatal("reopened store still degraded")
	}
	if got := fingerprint(t, s2); got != want {
		t.Fatalf("recovered state differs:\n got %q\nwant %q", got, want)
	}
	mustIntact(t, s2)
}
