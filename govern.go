package ordxml

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ordxml/internal/govern"
	olog "ordxml/internal/obs/log"
)

// This file is the store's resource-governance surface: typed failure
// sentinels, the session query timeout, the per-request memory budget, the
// admission gate that sheds load under saturation, and the degraded
// read-only mode the store enters when the durability layer hits an I/O
// error. The mechanisms live in internal/govern and the SQL engine; this
// layer decides where they apply — every public read entry point runs
// through beginRead, every mutation through logOp's read-only check.

// Typed governance errors, re-exported so callers can errors.Is against the
// public package. Each failure the governance layer produces wraps one of
// these (and, where applicable, the underlying cause: a context error, the
// injected I/O error).
var (
	// ErrCanceled reports a request aborted because its context was canceled.
	ErrCanceled = govern.ErrCanceled
	// ErrDeadlineExceeded reports a request aborted by its deadline (the
	// caller's, or the store's SetQueryTimeout default).
	ErrDeadlineExceeded = govern.ErrDeadlineExceeded
	// ErrMemoryBudget reports a request aborted for exceeding the store's
	// memory budget (SetMemoryBudget).
	ErrMemoryBudget = govern.ErrMemoryBudget
	// ErrOverloaded reports a request shed by admission control
	// (SetAdmissionLimit) because the store was saturated.
	ErrOverloaded = govern.ErrOverloaded
	// ErrInternal reports a statement that panicked; the panic was contained
	// at the statement boundary and converted to this error.
	ErrInternal = govern.ErrInternal
	// ErrReadOnly reports a mutation rejected because the store is degraded:
	// a WAL or page-file I/O error made further writes unsafe, so the store
	// serves reads only. Reopen the store to attempt recovery.
	ErrReadOnly = errors.New("store is read-only (degraded after an I/O error)")
)

// storeGovern is the store's governance state. Zero value = ungoverned: no
// timeout, no admission gate, not degraded.
type storeGovern struct {
	// queryTimeout is the session default deadline for read requests, in
	// nanoseconds (0 = none). Applied only when the caller's context carries
	// no deadline of its own.
	queryTimeout atomic.Int64
	// gate is the admission semaphore, nil when admission control is off.
	gate atomic.Pointer[govern.Admission]
	// degraded flips once, on the first durability I/O error; mu guards the
	// cause string recorded alongside it.
	degraded atomic.Bool
	mu       sync.Mutex
	cause    string
}

// SetQueryTimeout sets a session-default deadline for read requests (Query,
// QueryValues, Serialize, SQL and their Ctx variants). A caller context that
// already carries a deadline wins; d <= 0 removes the default. Aborted
// requests fail with an error matching ErrDeadlineExceeded.
func (s *Store) SetQueryTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.gov.queryTimeout.Store(int64(d))
}

// QueryTimeout returns the session-default read deadline (0 = none).
func (s *Store) QueryTimeout() time.Duration {
	return time.Duration(s.gov.queryTimeout.Load())
}

// SetMemoryBudget caps the bytes one request may materialize across all of
// its statements (hash-join builds, sort buffers, result sets). Requests
// that exceed it abort with an error matching ErrMemoryBudget; n <= 0
// removes the cap. The mem.* metrics track charged bytes, per-request peaks
// and budget aborts.
func (s *Store) SetMemoryBudget(n int64) { s.db.SetMemoryBudget(n) }

// MemoryBudget returns the per-request memory cap (0 = unlimited).
func (s *Store) MemoryBudget() int64 { return s.db.MemoryBudget() }

// SetAdmissionLimit installs admission control: at most maxActive read
// requests run concurrently, at most maxQueue more wait (each at most
// maxWait), and everything beyond that is shed immediately with an error
// matching ErrOverloaded. maxActive <= 0 removes the gate. The admission.*
// metrics expose admitted/shed counts, queue depth and wait times.
//
// Only the public read entry points are gated: mutations already serialize
// on the store's writer lock, and the store's own internal statements (WAL
// replay, integrity checks) must never be shed.
func (s *Store) SetAdmissionLimit(maxActive, maxQueue int, maxWait time.Duration) {
	if maxActive <= 0 {
		s.gov.gate.Store(nil)
		return
	}
	g := govern.NewAdmission(maxActive, maxQueue, maxWait)
	g.RegisterMetrics(s.db.Registry())
	s.gov.gate.Store(g)
}

// Degraded reports whether the store is in degraded read-only mode, and the
// cause that put it there. The state is in-memory only: reopening the store
// runs recovery and starts healthy.
func (s *Store) Degraded() (bool, string) {
	if !s.gov.degraded.Load() {
		return false, ""
	}
	s.gov.mu.Lock()
	defer s.gov.mu.Unlock()
	return true, s.gov.cause
}

// enterDegraded transitions the store to read-only after a durability I/O
// error. Only the first cause is recorded; later errors on an already-
// degraded store are someone racing the transition.
func (s *Store) enterDegraded(cause string) {
	s.gov.mu.Lock()
	if s.gov.cause == "" {
		s.gov.cause = cause
	}
	s.gov.mu.Unlock()
	if s.gov.degraded.CompareAndSwap(false, true) {
		s.db.Registry().Log().Error("store degraded to read-only",
			olog.Str("cause", cause))
	}
}

// readOnlyErr returns the mutation-rejecting error while degraded, nil
// otherwise.
func (s *Store) readOnlyErr() error {
	if !s.gov.degraded.Load() {
		return nil
	}
	s.gov.mu.Lock()
	cause := s.gov.cause
	s.gov.mu.Unlock()
	return fmt.Errorf("%w: %s", ErrReadOnly, cause)
}

// beginRead is the governance prologue every public read entry point runs:
// admission control first (a shed request does no work at all), then the
// session query timeout (when the caller brought no deadline), then the
// request memory accountant (when a budget is configured), so every
// statement the request issues shares one budget. The returned end function
// must be called when the request finishes; it releases the admission slot
// and the timeout's resources.
func (s *Store) beginRead(ctx context.Context) (context.Context, func(), error) {
	release, err := s.gov.gate.Load().Acquire(ctx)
	if err != nil {
		return nil, nil, err
	}
	cancel := func() {}
	if d := s.gov.queryTimeout.Load(); d > 0 {
		if _, has := ctx.Deadline(); !has {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(d))
		}
	}
	if govern.AccountantFrom(ctx) == nil {
		if a := s.db.RequestAccountant(); a != nil {
			ctx = govern.WithAccountant(ctx, a)
		}
	}
	return ctx, func() { cancel(); release() }, nil
}
