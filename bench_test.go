// Benchmarks reproducing the paper's tables and figures (experiments E1–E9;
// see DESIGN.md §6 and EXPERIMENTS.md). Each benchmark mirrors one
// cmd/xmlbench experiment as a testing.B target; custom metrics report the
// hardware-independent work counters (rows renumbered, index probes, bytes)
// alongside wall time.
package ordxml_test

import (
	"fmt"
	"testing"

	"ordxml"
	"ordxml/internal/bench"
)

const benchItems = 100 // items per region for query/update benchmarks

// BenchmarkE1Storage reports bytes per node for each encoding (storage-cost
// table). Time is load time; the metric of interest is bytes_per_node.
func BenchmarkE1Storage(b *testing.B) {
	doc := bench.CatalogDoc(benchItems)
	xml := doc.String()
	nodes := float64(doc.Size())
	for _, cfg := range bench.EncodingsWithText() {
		b.Run(cfg.Name, func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				s, err := ordxml.Open(cfg.Opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.LoadString("d", xml); err != nil {
					b.Fatal(err)
				}
				bytes = s.Storage().HeapBytes
			}
			b.ReportMetric(float64(bytes)/nodes, "bytes/node")
		})
	}
}

// BenchmarkE2Load measures shred+load throughput per encoding and size.
func BenchmarkE2Load(b *testing.B) {
	for _, size := range []int{50, 200} {
		doc := bench.CatalogDoc(size)
		xml := doc.String()
		nodes := float64(doc.Size())
		for _, cfg := range bench.Encodings() {
			b.Run(fmt.Sprintf("%s/items=%d", cfg.Name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s, err := ordxml.Open(cfg.Opts)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := s.LoadString("d", xml); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/nodes, "ns/node")
			})
		}
	}
}

// BenchmarkE3Queries runs the ordered query suite per encoding. The work
// metric counts index probes + rows scanned per query.
func BenchmarkE3Queries(b *testing.B) {
	doc := bench.CatalogDoc(benchItems)
	for _, cfg := range bench.Encodings() {
		s, id, err := bench.NewStore(cfg, doc)
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range bench.QuerySuite(benchItems) {
			b.Run(q.ID+"/"+cfg.Name, func(b *testing.B) {
				before := s.Counters()
				for i := 0; i < b.N; i++ {
					if _, err := s.Query(id, q.XPath); err != nil {
						b.Fatal(err)
					}
				}
				w := s.Counters().Sub(before)
				b.ReportMetric(float64(w.IndexProbes+w.RowsScanned)/float64(b.N), "work/op")
			})
		}
	}
}

// benchInsert measures repeated single-fragment inserts at a named position,
// rebuilding the store whenever the document has grown 50% so position
// semantics stay comparable.
func benchInsert(b *testing.B, cfg bench.Config, where string, items int) {
	doc := bench.CatalogDoc(items)
	baseNodes := doc.Size()
	var s *ordxml.Store
	var id ordxml.DocID
	var inserted int
	rebuild := func() {
		var err error
		s, id, err = bench.NewStore(cfg, doc)
		if err != nil {
			b.Fatal(err)
		}
		inserted = 0
	}
	rebuild()
	var renumbered int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if inserted*10 > baseNodes/2 {
			b.StopTimer()
			rebuild()
			b.StartTimer()
		}
		target, pos, err := insertTarget(s, id, where)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := s.Insert(id, target, pos, "<note><text>x</text></note>")
		if err != nil {
			b.Fatal(err)
		}
		renumbered += rep.RowsRenumbered
		inserted++
	}
	b.ReportMetric(float64(renumbered)/float64(b.N), "renumbered/op")
}

func insertTarget(s *ordxml.Store, id ordxml.DocID, where string) (ordxml.NodeID, ordxml.Position, error) {
	items, err := s.Query(id, "/site/regions/namerica/item")
	if err != nil || len(items) == 0 {
		return 0, 0, fmt.Errorf("items: %v, %v", len(items), err)
	}
	switch where {
	case "begin":
		return items[0].ID, ordxml.Before, nil
	case "middle":
		return items[len(items)/2].ID, ordxml.Before, nil
	default:
		return items[len(items)-1].ID, ordxml.After, nil
	}
}

// BenchmarkE4InsertPosition measures insert cost at begin/middle/end per
// dense encoding (update-by-position figure).
func BenchmarkE4InsertPosition(b *testing.B) {
	for _, where := range []string{"begin", "middle", "end"} {
		for _, cfg := range bench.Encodings() {
			b.Run(where+"/"+cfg.Name, func(b *testing.B) {
				benchInsert(b, cfg, where, benchItems)
			})
		}
	}
}

// BenchmarkE5InsertScale measures insert-at-beginning cost as documents grow
// (update-vs-size figure).
func BenchmarkE5InsertScale(b *testing.B) {
	for _, size := range []int{50, 200, 400} {
		for _, cfg := range bench.Encodings() {
			b.Run(fmt.Sprintf("items=%d/%s", size, cfg.Name), func(b *testing.B) {
				benchInsert(b, cfg, "begin", size)
			})
		}
	}
}

// BenchmarkE6Gaps measures the gap ablation: repeated point inserts under
// growing gap sizes (sparse-order discussion).
func BenchmarkE6Gaps(b *testing.B) {
	for _, enc := range []ordxml.Encoding{ordxml.Global, ordxml.Local, ordxml.Dewey} {
		for _, cfg := range bench.GapConfigs(enc, []uint32{1, 16, 64}) {
			b.Run(cfg.Name, func(b *testing.B) {
				benchInsert(b, cfg, "middle", benchItems)
			})
		}
	}
}

// BenchmarkE7Publish measures reconstruction of the whole document and of a
// region subtree per encoding (reconstruction figure).
func BenchmarkE7Publish(b *testing.B) {
	doc := bench.CatalogDoc(benchItems)
	for _, cfg := range bench.Encodings() {
		s, id, err := bench.NewStore(cfg, doc)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("document/"+cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.SerializeDocument(id); err != nil {
					b.Fatal(err)
				}
			}
		})
		hits, err := s.Query(id, "/site/regions/namerica")
		if err != nil || len(hits) != 1 {
			b.Fatal(err)
		}
		b.Run("subtree/"+cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Serialize(id, hits[0].ID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8DeweyCodec compares the binary and padded-string Dewey codecs
// on the descendant query (codec ablation).
func BenchmarkE8DeweyCodec(b *testing.B) {
	doc := bench.CatalogDoc(benchItems)
	for _, cfg := range []bench.Config{
		{Name: "binary", Opts: ordxml.Options{Encoding: ordxml.Dewey}},
		{Name: "string", Opts: ordxml.Options{Encoding: ordxml.Dewey, DeweyAsText: true}},
	} {
		s, id, err := bench.NewStore(cfg, doc)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Query(id, "//keyword"); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.Storage().HeapBytes), "heap_bytes")
		})
	}
}

// BenchmarkE9QueryScaling measures query time as documents grow, for the
// three query shapes of experiment E9.
func BenchmarkE9QueryScaling(b *testing.B) {
	for _, size := range []int{50, 200} {
		doc := bench.CatalogDoc(size)
		qs := bench.QuerySuite(size)
		for _, q := range []bench.QuerySpec{qs[0], qs[5], qs[8]} {
			for _, cfg := range bench.Encodings() {
				s, id, err := bench.NewStore(cfg, doc)
				if err != nil {
					b.Fatal(err)
				}
				b.Run(fmt.Sprintf("%s/items=%d/%s", q.ID, size, cfg.Name), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := s.Query(id, q.XPath); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}
