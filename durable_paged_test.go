package ordxml

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Buffer-pooled durable-store tests: the paged tier must give the same
// durability answers as the all-RAM tier while storing pages on disk and
// checkpointing incrementally.

func openPaged(t *testing.T, dir string, frames int, enc Encoding) *Store {
	t.Helper()
	s, err := OpenDurable(dir, Options{Encoding: enc, BufferPoolFrames: frames})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPagedDurableRoundTrip(t *testing.T) {
	for _, enc := range []Encoding{Global, Local, Dewey} {
		t.Run(enc.String(), func(t *testing.T) {
			dir := t.TempDir()
			s := openPaged(t, dir, 16, enc)
			if !s.Pooled() {
				t.Fatal("store is not pooled")
			}
			doc, err := s.LoadString("d", "<R><A>alpha</A><B>beta</B><C/></R>")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Insert(doc, 1, LastChild, "<D>delta</D>"); err != nil {
				t.Fatal(err)
			}
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			// Post-checkpoint mutations live only in the WAL until reopen.
			if _, err := s.Insert(doc, 1, FirstChild, "<Z>zeta</Z>"); err != nil {
				t.Fatal(err)
			}
			want := fingerprint(t, s)
			mustIntact(t, s)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			for _, f := range []string{pagesFile, metaFile} {
				if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
					t.Fatalf("missing %s after checkpoint: %v", f, err)
				}
			}
			if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err == nil {
				t.Fatal("paged store wrote a legacy full snapshot")
			}

			r := openPaged(t, dir, 16, enc)
			if got := fingerprint(t, r); got != want {
				t.Fatalf("reopened store diverged:\n got %q\nwant %q", got, want)
			}
			vals, err := r.QueryValues(doc, "/R/Z")
			if err != nil || len(vals) != 1 || vals[0] != "zeta" {
				t.Fatalf("WAL-replayed insert lost: %v, %v", vals, err)
			}
			mustIntact(t, r)
		})
	}
}

func TestPagedRecoveryWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openPaged(t, dir, 16, Dewey)
	doc, err := s.LoadString("d", "<R><A>one</A></R>")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetValue(doc, 3, "two"); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// pages.db exists but no manifest was ever installed: recovery must
	// rebuild everything from the WAL alone.
	if _, err := os.Stat(filepath.Join(dir, metaFile)); err == nil {
		t.Fatal("manifest exists before any checkpoint")
	}
	r := openPaged(t, dir, 16, Dewey)
	if got := fingerprint(t, r); got != want {
		t.Fatalf("WAL-only recovery diverged:\n got %q\nwant %q", got, want)
	}
	mustIntact(t, r)
}

// TestPagedIncrementalCheckpoint is the metrics-verified incrementality
// check: a checkpoint after one tiny update must flush only the handful of
// pages that update dirtied, not the whole store.
func TestPagedIncrementalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openPaged(t, dir, 256, Dewey)
	var b strings.Builder
	b.WriteString("<R>")
	for i := 0; i < 400; i++ {
		b.WriteString("<ITEM>some padding text to fill heap pages with data</ITEM>")
	}
	b.WriteString("</R>")
	doc, err := s.LoadString("d", b.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, ok := s.PoolStats()
	if !ok {
		t.Fatal("no pool stats")
	}
	full := st.DirtyFlushes
	if full < 20 {
		t.Fatalf("first checkpoint flushed only %d pages; workload too small", full)
	}

	// One point update, then checkpoint again: the flush delta must be a
	// short page path, not the store.
	if err := s.SetValue(doc, 3, "updated"); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, _ = s.PoolStats()
	delta := st.DirtyFlushes - full
	if delta == 0 {
		t.Fatal("second checkpoint flushed nothing (update lost?)")
	}
	if delta > full/4 || delta > 64 {
		t.Fatalf("incremental checkpoint flushed %d pages after one update (first flushed %d)", delta, full)
	}

	// An idle checkpoint flushes nothing at all.
	before := st.DirtyFlushes
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, _ = s.PoolStats()
	// writeWALLSN itself dirties the store_meta heap page, so allow the
	// couple of pages that bookkeeping touches.
	if idle := st.DirtyFlushes - before; idle > 8 {
		t.Fatalf("idle checkpoint flushed %d pages", idle)
	}
	mustIntact(t, s)
}

// TestPagedDropReleasesPages checks that dropping a document keeps the store
// checkpointable and intact (superseded pages recycle through the pool's
// shadow-paging free list).
func TestPagedDropReleasesPages(t *testing.T) {
	dir := t.TempDir()
	s := openPaged(t, dir, 32, Global)
	doc, err := s.LoadString("d", "<R><A>x</A><B>y</B></R>")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop(doc); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustIntact(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openPaged(t, dir, 32, Global)
	docs, err := r.Documents()
	if err != nil || len(docs) != 0 {
		t.Fatalf("dropped document survived recovery: %v, %v", docs, err)
	}
	mustIntact(t, r)
}
