GO ?= go

.PHONY: build test race lint lint-sarif check fuzz-smoke bench torture govern-torture

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs go vet plus the project's own analyzers: the per-package checks
# (encoding-dispatch exhaustiveness, pin pairing, raw-SQL construction, span
# lifetime, error wrapping) and the interprocedural contract checks (lock
# order, WAL-first durability, view immutability, atomic-access consistency).
# staticcheck runs too when it is on PATH; it is optional locally.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/ordlint ./...
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || echo "staticcheck not installed; skipping"

# lint-sarif runs the full analyzer suite and writes ordlint.sarif (SARIF
# 2.1.0, the interchange format code-scanning UIs ingest). The exit status
# still reflects findings; the log is written either way, which is what lets
# CI upload it as an artifact even from a failing run.
lint-sarif:
	$(GO) run ./cmd/ordlint -json ./... > ordlint.sarif

# check runs the analyzer self-tests (each analyzer against its testdata).
check:
	$(GO) test ./internal/lint/...

fuzz-smoke:
	$(GO) test -fuzz FuzzParse -fuzztime 10s ./internal/sqldb/sqlparse/
	$(GO) test -fuzz FuzzFromBytes -fuzztime 10s ./internal/core/dewey/
	$(GO) test -fuzz FuzzParse -fuzztime 10s ./internal/core/xpath/
	$(GO) test -fuzz FuzzParse -fuzztime 10s ./internal/xmltree/
	$(GO) test -fuzz FuzzVerifyPage -fuzztime 10s ./internal/sqldb/pagefile/

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# torture runs the crash-recovery harness with a longer session than the
# default `go test` smoke: a child process is killed at every registered
# failpoint and the store must recover to an acknowledged prefix.
torture:
	ORDXML_TORTURE_OPS=120 $(GO) test -run '^TestCrashTorture$$' -count=1 -v .

# govern-torture runs the query-lifecycle governance suite under the race
# detector: the cancellation storm (N readers canceled at random against a
# writer, all three encodings), deadline aborts with goroutine-leak checks,
# memory-budget and admission-shed paths, the degraded read-only transitions
# (WAL append and page-write failures), and the streaming-cursor early-close
# regression tests.
govern-torture:
	$(GO) test -race -count=1 -v -run \
		'TestCancellationStorm|TestQueryDeadlineAborts|TestQueryCancellation|TestSessionQueryTimeout|TestMemoryBudgetAbortsQuery|TestAdmissionControlSheds|TestWALFailureDegradesToReadOnly|TestPageWriteFailureDegradesStore' .
	$(GO) test -race -count=1 -run 'TestQueryRows|TestQueryAborts' ./internal/sqldb/
	$(GO) test -race -count=1 ./internal/govern/
