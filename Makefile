GO ?= go

.PHONY: build test race lint check fuzz-smoke bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs go vet plus the project's own analyzers (encoding-dispatch
# exhaustiveness, raw-SQL construction, span lifetime, error wrapping).
# staticcheck runs too when it is on PATH; it is optional locally.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/ordlint ./...
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || echo "staticcheck not installed; skipping"

# check runs the analyzer self-tests (each analyzer against its testdata).
check:
	$(GO) test ./internal/lint/...

fuzz-smoke:
	$(GO) test -fuzz FuzzParse -fuzztime 10s ./internal/sqldb/sqlparse/
	$(GO) test -fuzz FuzzFromBytes -fuzztime 10s ./internal/core/dewey/
	$(GO) test -fuzz FuzzParse -fuzztime 10s ./internal/core/xpath/
	$(GO) test -fuzz FuzzParse -fuzztime 10s ./internal/xmltree/

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...
