GO ?= go

.PHONY: build test race lint check fuzz-smoke bench torture

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs go vet plus the project's own analyzers (encoding-dispatch
# exhaustiveness, raw-SQL construction, span lifetime, error wrapping).
# staticcheck runs too when it is on PATH; it is optional locally.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/ordlint ./...
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || echo "staticcheck not installed; skipping"

# check runs the analyzer self-tests (each analyzer against its testdata).
check:
	$(GO) test ./internal/lint/...

fuzz-smoke:
	$(GO) test -fuzz FuzzParse -fuzztime 10s ./internal/sqldb/sqlparse/
	$(GO) test -fuzz FuzzFromBytes -fuzztime 10s ./internal/core/dewey/
	$(GO) test -fuzz FuzzParse -fuzztime 10s ./internal/core/xpath/
	$(GO) test -fuzz FuzzParse -fuzztime 10s ./internal/xmltree/
	$(GO) test -fuzz FuzzVerifyPage -fuzztime 10s ./internal/sqldb/pagefile/

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# torture runs the crash-recovery harness with a longer session than the
# default `go test` smoke: a child process is killed at every registered
# failpoint and the store must recover to an acknowledged prefix.
torture:
	ORDXML_TORTURE_OPS=120 $(GO) test -run '^TestCrashTorture$$' -count=1 -v .
