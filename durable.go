package ordxml

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ordxml/internal/core/encoding"
	"ordxml/internal/core/update"
	"ordxml/internal/failpoint"
	"ordxml/internal/govern"
	"ordxml/internal/obs"
	olog "ordxml/internal/obs/log"
	"ordxml/internal/sqldb"
	"ordxml/internal/sqldb/bufpool"
	"ordxml/internal/sqldb/pagefile"
	"ordxml/internal/sqldb/sqltypes"
	"ordxml/internal/wal"
)

// This file implements the durability subsystem: a durable store pairs the
// engine with a write-ahead log of logical mutations and an atomically-
// replaced checkpoint, in one directory. Two storage tiers share the same
// WAL protocol:
//
// All-RAM (default):
//
//	<dir>/snapshot.db   full-database snapshot from the last Checkpoint
//	<dir>/wal.log       logical mutations since that checkpoint
//
// Buffer-pooled (Options.BufferPoolFrames > 0): storage pages through a
// fixed-capacity pool over an on-disk page file, so the dataset may exceed
// RAM and checkpoints are incremental — only pages dirtied since the last
// checkpoint are written, plus a small manifest of page references:
//
//	<dir>/pages.db      8 KiB-page file holding every heap and index page
//	<dir>/meta.db       checkpoint manifest (schema + page references)
//	<dir>/wal.log       logical mutations since that checkpoint
//
// Every mutating Store entry point follows append-then-apply: the operation
// is encoded as a WAL record and fsynced *before* it touches the engine, so
// an operation that returned success is durable. The pool enforces
// WAL-before-data independently: a dirty page cannot reach pages.db before
// the log is durable through the page's recorded LSN. Recovery = load the
// last checkpoint, replay every WAL record past the checkpoint's LSN
// (recorded in store_meta), truncate a torn tail, and finish with a deep
// integrity check. Replay is deterministic because every record captures the
// operation's logical inputs (names, node ids, XML text) and the engine's id
// and order-key allocation is a pure function of store state.
//
// Checkpoint shrinks the log. All-RAM: snapshot to a temp file, fsync,
// rename over snapshot.db, fsync the directory, rotate the WAL. Pooled:
// serialize changed index nodes to fresh pages (shadow paging — checkpoint-
// referenced pages are never overwritten), flush the pool's dirty frames,
// sync pages.db, atomically install the manifest, commit the pool's
// allocator, rotate the WAL. A crash between install and rotation is benign
// in both tiers — replay skips records at or below the checkpoint's LSN.

// WAL record kinds, one per logical mutation the public API can perform.
const (
	recLoad     byte = 1 // name, xml
	recInsert   byte = 2 // doc, target, mode, fragment
	recDelete   byte = 3 // doc, id
	recSetValue byte = 4 // doc, id, value
	recRename   byte = 5 // doc, id, name
	recMove     byte = 6 // doc, id, target, mode
	recDrop     byte = 7 // doc
	recExec     byte = 8 // sql, row-encoded params
)

// Checkpoint failpoints (the WAL package registers its own for the
// append/sync/rotate/replay paths; the buffer pool registers bufpool.flush
// and bufpool.evict).
var (
	fpCkptBeforeSnapshot = failpoint.New("checkpoint.before-snapshot")
	fpCkptBeforeRename   = failpoint.New("checkpoint.before-rename")
	fpCkptAfterRename    = failpoint.New("checkpoint.after-rename")

	fpPagedBeforeFlush = failpoint.New("checkpoint.paged.before-flush")
	fpPagedBeforeMeta  = failpoint.New("checkpoint.paged.before-meta")
	fpPagedAfterMeta   = failpoint.New("checkpoint.paged.after-meta")
)

// Durable-store file names inside the store directory.
const (
	snapshotFile = "snapshot.db"
	walFile      = "wal.log"
	pagesFile    = "pages.db"
	metaFile     = "meta.db"
)

// DefaultPoolFrames is the buffer-pool capacity OpenDurable uses when a
// paged store is reopened without an explicit BufferPoolFrames (8 MiB of
// 8 KiB pages).
const DefaultPoolFrames = 1024

// durState is the durable half of a Store; nil for memory-only stores.
type durState struct {
	dir string
	log *wal.Log
	// mu serializes logged mutations and checkpoints so the WAL's record
	// order always equals the apply order (replay correctness depends on it).
	mu sync.Mutex

	// pool and pf are the buffer-pooled tier; nil for all-RAM stores.
	pool     *bufpool.Pool
	pf       *pagefile.File
	metaPath string

	checkpoints *obs.Counter
	ckptLat     *obs.Histogram
	opErrors    *obs.Counter

	// lastCkpt is the wall time of the last completed checkpoint (unix
	// nanoseconds; 0 = none since open). Feeds the wal.checkpoint_age_ms
	// readiness gauge and WALStats.LastCheckpoint.
	lastCkpt atomic.Int64
}

// WALStats summarizes a durable store's log activity.
type WALStats struct {
	// Records and Bytes count WAL appends (framed bytes) since open.
	Records int64
	Bytes   int64
	// Fsyncs counts log fsyncs (group commit can acknowledge several
	// records per fsync).
	Fsyncs int64
	// Rotations counts completed checkpoint log rotations.
	Rotations int64
	// LastLSN is the highest assigned sequence number; DurableLSN the
	// highest one fsynced.
	LastLSN    uint64
	DurableLSN uint64
	// SizeBytes is the current log file size.
	SizeBytes int64
	// LastCheckpoint is when the last checkpoint completed (zero when none
	// has completed since open).
	LastCheckpoint time.Time
}

// PoolStats summarizes a pooled store's buffer-pool activity.
type PoolStats struct {
	// Hits and Misses count payload lookups served from memory vs faulted
	// from the page file; Evictions counts frames dropped to stay within
	// capacity and DirtyFlushes pages written to the file.
	Hits, Misses, Evictions, DirtyFlushes int64
	// Resident, Dirty and Pinned are point-in-time frame gauges.
	Resident, Dirty, Pinned int64
	// Capacity is the configured frame budget.
	Capacity int
}

// Durable reports whether the store was opened with OpenDurable.
func (s *Store) Durable() bool { return s.dur != nil }

// Health returns the store's operational problems; an empty list means the
// store is ready to serve. Today's checks: the write-ahead log's fail-stop
// state (a failed log refuses every further mutation) and the last integrity
// check's outcome. The /debug/readyz endpoint serves this.
func (s *Store) Health() []string {
	var problems []string
	if ok, cause := s.Degraded(); ok {
		problems = append(problems, fmt.Sprintf("degraded: read-only: %s", cause))
	}
	if s.dur != nil {
		if err := s.dur.log.Failed(); err != nil {
			problems = append(problems, fmt.Sprintf("wal: %v", err))
		}
	}
	switch s.db.Registry().Gauge("integrity.last_status").Value() {
	case integrityViolations:
		problems = append(problems, "integrity: last check found violations")
	case integrityError:
		problems = append(problems, "integrity: last check failed to run")
	}
	return problems
}

// Pooled reports whether the store's storage pages through a buffer pool.
func (s *Store) Pooled() bool { return s.dur != nil && s.dur.pool != nil }

// PoolStats returns the buffer pool's activity summary; ok is false for
// stores without a buffer pool.
func (s *Store) PoolStats() (st PoolStats, ok bool) {
	if s.dur == nil || s.dur.pool == nil {
		return PoolStats{}, false
	}
	p := s.dur.pool.Stats()
	return PoolStats{
		Hits: p.Hits, Misses: p.Misses, Evictions: p.Evictions,
		DirtyFlushes: p.DirtyFlushes,
		Resident:     p.Resident, Dirty: p.Dirty, Pinned: p.Pinned,
		Capacity: p.Capacity,
	}, true
}

// WALStats returns the write-ahead log's activity summary; ok is false for
// memory-only stores.
func (s *Store) WALStats() (st WALStats, ok bool) {
	if s.dur == nil {
		return WALStats{}, false
	}
	w := s.dur.log.Stats()
	st = WALStats{
		Records:    w.Appends,
		Bytes:      w.AppendedBytes,
		Fsyncs:     w.Fsyncs,
		Rotations:  w.Rotations,
		LastLSN:    w.LastLSN,
		DurableLSN: w.DurableLSN,
		SizeBytes:  w.SizeBytes,
	}
	if ns := s.dur.lastCkpt.Load(); ns != 0 {
		st.LastCheckpoint = time.Unix(0, ns)
	}
	return st, true
}

// OpenDurable opens (or creates) a durable store in dir. When dir holds an
// earlier store, recovery runs: the last checkpoint is loaded (full snapshot
// or paged manifest, whichever tier the store was created with), the
// write-ahead log is replayed past it (a torn final record is truncated
// away), and the recovered store must pass the deep integrity check; the
// encoding options in opts are ignored in that case — the checkpoint's own
// win. When dir is fresh, an empty store with opts is created; a positive
// opts.BufferPoolFrames selects the buffer-pooled tier (see Options).
//
// Close the store to release the log and page files; call Checkpoint
// periodically to bound the log and recovery time.
func OpenDurable(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("open durable store: %w", err)
	}
	pagesPath := filepath.Join(dir, pagesFile)
	metaPath := filepath.Join(dir, metaFile)
	snapPath := filepath.Join(dir, snapshotFile)

	var (
		s       *Store
		snapLSN uint64
		pool    *bufpool.Pool
		pf      *pagefile.File
	)
	fail := func(err error) (*Store, error) {
		if pf != nil {
			pf.Close()
		}
		return nil, err
	}
	switch {
	case fileExists(pagesPath):
		// Paged store. The page file existing with no manifest means a crash
		// before the first checkpoint finished: nothing in pages.db is
		// durable yet, so recovery is a fresh store plus a full WAL replay.
		var err error
		if pf, err = pagefile.Open(pagesPath); err != nil {
			return nil, fmt.Errorf("open durable store %s: %w", dir, err)
		}
		pool = bufpool.New(pf, poolFrames(opts))
		if fileExists(metaPath) {
			if s, err = openPagedManifest(metaPath, pool); err != nil {
				return fail(fmt.Errorf("open durable store %s: %w", dir, err))
			}
			if snapLSN, err = readWALLSN(s.db); err != nil {
				return fail(fmt.Errorf("open durable store %s: %w", dir, err))
			}
		} else if s, err = openPagedFresh(pool, opts); err != nil {
			return fail(err)
		}
	case fileExists(snapPath):
		// Legacy all-RAM store with a full snapshot.
		var err error
		if s, err = OpenFile(snapPath); err != nil {
			return nil, fmt.Errorf("open durable store %s: %w", dir, err)
		}
		if snapLSN, err = readWALLSN(s.db); err != nil {
			return nil, fmt.Errorf("open durable store %s: %w", dir, err)
		}
	case opts.BufferPoolFrames > 0:
		var err error
		if pf, err = pagefile.Create(pagesPath); err != nil {
			return nil, fmt.Errorf("open durable store %s: %w", dir, err)
		}
		pool = bufpool.New(pf, poolFrames(opts))
		if s, err = openPagedFresh(pool, opts); err != nil {
			return fail(err)
		}
	default:
		var err error
		if s, err = Open(opts); err != nil {
			return nil, err
		}
	}

	lg, err := wal.Open(filepath.Join(dir, walFile), s.db.Registry())
	if err != nil {
		return fail(err)
	}
	opErrors := s.db.Registry().Counter("wal.replay.op_errors")
	logger := s.db.Registry().Log()
	replayStart := time.Now()
	var replayed int64
	if err := lg.Replay(snapLSN, func(rec wal.Record) error {
		replayed++
		return s.applyRecord(rec, opErrors)
	}); err != nil {
		lg.Close()
		return fail(fmt.Errorf("replay %s: %w", filepath.Join(dir, walFile), err))
	}
	if replayed > 0 {
		logger.Info("wal: replay complete",
			olog.Str("dir", dir),
			olog.Int("records", replayed),
			olog.Int("from_lsn", int64(snapLSN)),
			olog.Dur("elapsed", time.Since(replayStart)))
	}
	if n := opErrors.Value(); n > 0 {
		// Expected only when the live run logged an operation before
		// discovering it was invalid; anything beyond a handful suggests a
		// replay determinism bug.
		logger.Warn("wal: replay skipped failing operations",
			olog.Str("dir", dir), olog.Int("op_errors", n))
	}
	lg.EnsureNextLSN(snapLSN + 1)
	if pool != nil {
		// WAL-before-data: flushed pages carry the log position current when
		// they were dirtied, and the log must be durable through it first.
		// Wired after replay — replay holds the log's lock, and pages dirtied
		// by replay need no guard because their records are already on disk.
		pool.CurrentLSN = lg.LastLSN
		pool.EnsureDurable = func(lsn uint64) error {
			if lg.DurableLSN() >= lsn {
				return nil
			}
			return lg.Sync()
		}
	}

	// Recovery ends with the deep integrity check: a store rebuilt from
	// checkpoint + log must be indistinguishable from one that never crashed.
	problems, err := s.CheckIntegrity()
	if err != nil {
		lg.Close()
		return fail(fmt.Errorf("post-recovery integrity check: %w", err))
	}
	if len(problems) > 0 {
		lg.Close()
		return fail(fmt.Errorf("post-recovery integrity check found %d violation(s): %s",
			len(problems), strings.Join(problems, "; ")))
	}

	reg := s.db.Registry()
	s.dur = &durState{
		dir:         dir,
		log:         lg,
		pool:        pool,
		pf:          pf,
		metaPath:    metaPath,
		checkpoints: reg.Counter("wal.checkpoints"),
		ckptLat:     reg.Histogram("wal.checkpoint.latency"),
		opErrors:    opErrors,
	}
	if pool != nil {
		// A failed page write (flush or checkpoint) leaves disk state behind
		// the pool's idea of it; the store degrades to read-only — snapshot
		// reads still serve from memory, mutations are refused until reopen.
		pool.OnWriteError = func(err error) {
			s.enterDegraded(fmt.Sprintf("page write failed: %v", err))
		}
	}
	// Readiness gauge: milliseconds since the last completed checkpoint
	// (-1 until one completes). Pair with wal.size_bytes to decide when the
	// log has grown stale enough to warrant a checkpoint.
	dur := s.dur
	reg.RegisterFunc("wal.checkpoint_age_ms", func() int64 {
		ns := dur.lastCkpt.Load()
		if ns == 0 {
			return -1
		}
		return time.Since(time.Unix(0, ns)).Milliseconds()
	})
	return s, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// poolFrames resolves the pool capacity for a paged store.
func poolFrames(opts Options) int {
	if opts.BufferPoolFrames > 0 {
		return opts.BufferPoolFrames
	}
	return DefaultPoolFrames
}

// openPagedFresh creates an empty store whose storage pages through pool.
func openPagedFresh(pool *bufpool.Pool, opts Options) (*Store, error) {
	iopts, err := internalOpts(opts)
	if err != nil {
		return nil, err
	}
	return bootstrapStore(sqldb.OpenPooled(pool), iopts)
}

// openPagedManifest opens the store a checkpoint manifest describes, over
// pool. Table data stays on disk and faults in on first touch.
func openPagedManifest(path string, pool *bufpool.Pool) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db, err := sqldb.LoadPaged(f, pool)
	if err != nil {
		return nil, err
	}
	iopts, err := readMeta(db)
	if err != nil {
		return nil, err
	}
	if !encoding.Installed(db, iopts) {
		return nil, fmt.Errorf("manifest lacks the %s node table", iopts.Kind)
	}
	return newStoreOn(db, iopts)
}

// Close syncs and releases the write-ahead log and, for pooled stores, the
// page file. Memory-only stores have nothing to release; Close is a no-op
// for them.
func (s *Store) Close() error {
	if s.dur == nil {
		return nil
	}
	s.dur.mu.Lock()
	defer s.dur.mu.Unlock()
	err := s.dur.log.Close()
	if s.dur.pf != nil {
		if cerr := s.dur.pf.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Checkpoint makes the store's current state durable without the log and
// rotates the write-ahead log, bounding recovery to the log written after
// this call. All-RAM stores write a full atomic snapshot; pooled stores
// checkpoint incrementally — only pages dirtied since the last checkpoint
// are flushed, followed by a small manifest install. Either way the
// checkpoint records the log's high-water LSN, so replay after a crash —
// even one landing between the checkpoint install and the log rotation —
// never re-applies an operation the checkpoint already contains.
//ordlint:ignore walfirst checkpoint metadata records the WAL position itself; logging it would be circular (see CheckpointCtx)
func (s *Store) Checkpoint() error { return s.CheckpointCtx(context.Background()) }

// CheckpointCtx is Checkpoint with a caller context: with the request tracer
// enabled the checkpoint records a span tree (manifest or snapshot write,
// pool flush, install, log rotation), and completion is structured-logged.
func (s *Store) CheckpointCtx(ctx context.Context) error {
	if s.dur == nil {
		return fmt.Errorf("store is not durable (open it with OpenDurable)")
	}
	ctx, root := s.rootSpan(ctx, "checkpoint")
	defer root.End()
	sp := obs.FromContext(ctx)
	s.dur.mu.Lock()
	defer s.dur.mu.Unlock()
	start := time.Now()
	lsn := s.dur.log.LastLSN()
	// The wal_lsn row is checkpoint metadata, deliberately outside the
	// WAL-first contract: it records how much of the log the checkpoint
	// already contains, so appending it to the log it describes would be
	// circular, and replay restores it from the snapshot instead.
	//ordlint:ignore walfirst checkpoint metadata write records the WAL position; logging it to the WAL it describes would be circular
	if err := s.writeWALLSN(lsn); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	var err error
	if s.dur.pool != nil {
		err = s.checkpointPaged(sp)
	} else {
		err = s.checkpointSnapshot(sp)
	}
	logger := s.db.Registry().Log()
	if err != nil {
		logger.Error("checkpoint failed", olog.Str("dir", s.dur.dir), olog.Err(err))
		return err
	}
	rsp := sp.StartChild("wal.rotate")
	err = s.dur.log.Rotate()
	rsp.End()
	if err != nil {
		logger.Error("checkpoint failed", olog.Str("dir", s.dur.dir), olog.Err(err))
		return fmt.Errorf("checkpoint: rotate log: %w", err)
	}
	s.dur.checkpoints.Inc()
	s.dur.ckptLat.Observe(time.Since(start))
	s.dur.lastCkpt.Store(time.Now().UnixNano())
	tier := "snapshot"
	if s.dur.pool != nil {
		tier = "paged"
	}
	logger.Info("checkpoint complete",
		olog.Str("dir", s.dur.dir),
		olog.Str("tier", tier),
		olog.Int("lsn", int64(lsn)),
		olog.Dur("elapsed", time.Since(start)))
	sp.Arg("lsn", int64(lsn))
	return nil
}

// checkpointSnapshot is the all-RAM tier's checkpoint body: full snapshot to
// a temp file, fsync, atomic rename over snapshot.db.
func (s *Store) checkpointSnapshot(sp *obs.ActiveSpan) error {
	if err := fpCkptBeforeSnapshot.Hit(); err != nil {
		return err
	}
	snapPath := filepath.Join(s.dur.dir, snapshotFile)
	wsp := sp.StartChild("checkpoint.snapshot")
	tmp, err := writeSnapshotTemp(s, snapPath)
	wsp.End()
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := fpCkptBeforeRename.Hit(); err != nil {
		os.Remove(tmp)
		return err
	}
	isp := sp.StartChild("checkpoint.install")
	defer isp.End()
	if err := os.Rename(tmp, snapPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := wal.SyncDir(s.dur.dir); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return fpCkptAfterRename.Hit()
}

// checkpointPaged is the pooled tier's incremental checkpoint body:
//
//  1. serialize changed index nodes to fresh pages and build the manifest
//     (shadow paging — pages the previous checkpoint references are never
//     overwritten, so a crash anywhere below leaves it intact);
//  2. flush every dirty frame and sync the page file;
//  3. install the manifest atomically (temp + fsync + rename + dir sync);
//  4. commit the pool's allocator: pages the old checkpoint no longer
//     references become reusable.
func (s *Store) checkpointPaged(sp *obs.ActiveSpan) error {
	if err := fpPagedBeforeFlush.Hit(); err != nil {
		return err
	}
	msp := sp.StartChild("checkpoint.manifest")
	var manifest bytes.Buffer
	err := s.db.DumpPaged(&manifest)
	msp.End()
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	fsp := sp.StartChild("bufpool.flush_all")
	if err := s.dur.pool.FlushAll(); err != nil {
		fsp.End()
		return fmt.Errorf("checkpoint: flush pool: %w", err)
	}
	err = s.dur.pf.Sync()
	fsp.End()
	if err != nil {
		return fmt.Errorf("checkpoint: sync page file: %w", err)
	}
	if err := fpPagedBeforeMeta.Hit(); err != nil {
		return err
	}
	isp := sp.StartChild("checkpoint.install")
	defer isp.End()
	tmp, err := writeFileTemp(s.dur.metaPath, manifest.Bytes())
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, s.dur.metaPath); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := wal.SyncDir(s.dur.dir); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := fpPagedAfterMeta.Hit(); err != nil {
		return err
	}
	s.dur.pool.CommitCheckpoint()
	return nil
}

// writeFileTemp writes data to a synced temp file next to path and returns
// the temp name, ready to rename.
func writeFileTemp(path string, data []byte) (string, error) {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return "", err
	}
	tmp := f.Name()
	fail := func(err error) (string, error) {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return tmp, nil
}

// writeSnapshotTemp writes a snapshot to a temp file next to path and
// returns the temp name; the file is synced and closed, ready to rename.
func writeSnapshotTemp(s *Store, path string) (string, error) {
	f, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return "", err
	}
	tmp := f.Name()
	fail := func(err error) (string, error) {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := s.Save(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return tmp, nil
}

// writeWALLSN upserts the log high-water mark into store_meta so snapshots
// are self-describing about how much of the log they contain. The write is
// deliberately not WAL-logged: it is checkpoint metadata, not a mutation.
func (s *Store) writeWALLSN(lsn uint64) error {
	v := strconv.FormatUint(lsn, 10)
	n, err := s.db.Exec(`UPDATE store_meta SET v = ? WHERE k = ?`, sqldb.S(v), sqldb.S("wal_lsn"))
	if err != nil {
		return err
	}
	if n == 0 {
		_, err = s.db.Exec(`INSERT INTO store_meta VALUES (?, ?)`, sqldb.S("wal_lsn"), sqldb.S(v))
	}
	return err
}

// readWALLSN reads the snapshot's log high-water mark (0 when the snapshot
// predates any checkpoint or the key is absent).
func readWALLSN(db *sqldb.DB) (uint64, error) {
	res, err := db.Query(`SELECT v FROM store_meta WHERE k = ?`, sqldb.S("wal_lsn"))
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 {
		return 0, nil
	}
	lsn, err := strconv.ParseUint(res.Rows[0][0].Text(), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("snapshot meta wal_lsn: %w", err)
	}
	return lsn, nil
}

// logOp appends one operation record and makes it durable before the caller
// applies it. For a durable store it returns with the operation mutex held
// and hands back the release; callers run the apply under that lock so WAL
// order equals apply order. For memory-only stores it is free. When ctx
// carries an active trace span the append+fsync is recorded as a
// "wal.append_sync" child annotated with the assigned LSN.
func (s *Store) logOp(ctx context.Context, kind byte, encode func(*wal.BodyWriter)) (unlock func(), err error) {
	// Cancellation is only honored here, before any durable effect: once the
	// record is appended the operation always completes (a mutation is never
	// abandoned between its WAL record and its apply).
	if err := govern.CtxErr(ctx); err != nil {
		return nil, err
	}
	if err := s.readOnlyErr(); err != nil {
		return nil, err
	}
	if s.dur == nil {
		return func() {}, nil
	}
	s.dur.mu.Lock()
	var w wal.BodyWriter
	encode(&w)
	sp := obs.FromContext(ctx).StartChild("wal.append_sync")
	lsn, err := s.dur.log.AppendSync(kind, w.Finish())
	if err != nil {
		sp.End()
		s.dur.mu.Unlock()
		// The failed append poisons the log (fail-stop); the store degrades to
		// read-only so snapshot reads keep serving. The caller gets the I/O
		// error itself — later mutations get ErrReadOnly.
		s.enterDegraded(fmt.Sprintf("write-ahead log append failed: %v", err))
		return nil, fmt.Errorf("write-ahead log: %w", err)
	}
	sp.Arg("lsn", int64(lsn)).End()
	return s.dur.mu.Unlock, nil
}

// applyRecord re-applies one replayed WAL record. Decode failures abort
// recovery (the record passed its CRC, so a decode failure means a format
// bug, not disk corruption). Apply failures are counted and skipped: the
// live system logged the operation before discovering it was invalid, and
// replaying the same failure on the same state is the correct outcome.
func (s *Store) applyRecord(rec wal.Record, opErrors *obs.Counter) error {
	r := wal.NewBodyReader(rec.Body)
	var err error
	switch rec.Kind {
	case recLoad:
		name, xml := r.String(), r.Bytes()
		if r.Err() == nil {
			_, err = s.applyLoad(name, xml)
		}
	case recInsert:
		doc, target, mode, frag := r.Int(), r.Int(), r.String(), r.String()
		if r.Err() == nil {
			var m update.Mode
			if m, err = update.ParseMode(mode); err != nil {
				return fmt.Errorf("wal record lsn=%d: %w", rec.LSN, err)
			}
			_, err = s.manager.InsertXML(doc, target, m, frag)
		}
	case recDelete:
		doc, id := r.Int(), r.Int()
		if r.Err() == nil {
			_, err = s.manager.Delete(doc, id)
		}
	case recSetValue:
		doc, id, value := r.Int(), r.Int(), r.String()
		if r.Err() == nil {
			err = s.manager.SetValue(doc, id, value)
		}
	case recRename:
		doc, id, name := r.Int(), r.Int(), r.String()
		if r.Err() == nil {
			err = s.manager.Rename(doc, id, name)
		}
	case recMove:
		doc, id, target, mode := r.Int(), r.Int(), r.Int(), r.String()
		if r.Err() == nil {
			var m update.Mode
			if m, err = update.ParseMode(mode); err != nil {
				return fmt.Errorf("wal record lsn=%d: %w", rec.LSN, err)
			}
			_, err = s.moveTree(doc, id, target, m)
		}
	case recDrop:
		doc := r.Int()
		if r.Err() == nil {
			err = s.shredder.DropDocument(doc)
		}
	case recExec:
		sql, rowBytes := r.String(), r.Bytes()
		if r.Err() == nil {
			var params sqltypes.Row
			if params, err = sqltypes.DecodeRow(rowBytes); err != nil {
				return fmt.Errorf("wal record lsn=%d: decode params: %w", rec.LSN, err)
			}
			_, err = s.db.Exec(sql, params...)
		}
	default:
		return fmt.Errorf("wal record lsn=%d: unknown kind %d (log written by a newer version?)", rec.LSN, rec.Kind)
	}
	if derr := r.Err(); derr != nil {
		return fmt.Errorf("wal record lsn=%d kind=%d: %w", rec.LSN, rec.Kind, derr)
	}
	if err != nil {
		opErrors.Inc()
	}
	return nil
}

// applyLoad shreds logged XML bytes; shared by the durable Load wrapper and
// replay so both paths allocate ids identically.
func (s *Store) applyLoad(name string, xml []byte) (DocID, error) {
	return s.shredder.Load(name, bytes.NewReader(xml))
}
