// Command xmlgen emits synthetic XML documents (the benchmark workloads) to
// stdout.
//
// Usage:
//
//	xmlgen -kind catalog -items 100 -seed 1 > catalog.xml
//	xmlgen -kind play -acts 5 > play.xml
//	xmlgen -kind random -seed 7 > random.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ordxml/internal/xmlgen"
	"ordxml/internal/xmltree"
)

func main() {
	kind := flag.String("kind", "catalog", "document family: catalog, play or random")
	seed := flag.Int64("seed", 1, "generator seed")
	items := flag.Int("items", 50, "catalog: items per region")
	regions := flag.Int("regions", 3, "catalog: regions")
	keywords := flag.Int("keywords", 2, "catalog: keywords per item")
	acts := flag.Int("acts", 3, "play: acts")
	scenes := flag.Int("scenes", 4, "play: scenes per act")
	speeches := flag.Int("speeches", 10, "play: speeches per scene")
	stats := flag.Bool("stats", false, "print document statistics to stderr")
	flag.Parse()

	var doc *xmltree.Node
	switch *kind {
	case "catalog":
		doc = xmlgen.Catalog(xmlgen.CatalogConfig{
			Regions: *regions, ItemsPerRegion: *items,
			KeywordsPerItem: *keywords, DescriptionWords: 8, Seed: *seed,
		})
	case "play":
		doc = xmlgen.Play(xmlgen.PlayConfig{
			Acts: *acts, ScenesPerAct: *scenes, SpeechesPerScene: *speeches,
			LinesPerSpeech: 3, Seed: *seed,
		})
	case "random":
		doc = xmlgen.Random(xmlgen.DefaultRandom(*seed))
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q (want catalog, play or random)\n", *kind)
		os.Exit(2)
	}
	w := bufio.NewWriter(os.Stdout)
	if err := doc.WriteXML(w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintln(w)
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *stats {
		s := xmltree.ComputeStats(doc)
		fmt.Fprintf(os.Stderr, "nodes=%d elements=%d attrs=%d texts=%d depth=%d fanout=%d tags=%d\n",
			s.Nodes, s.Elements, s.Attrs, s.Texts, s.MaxDepth, s.MaxFanout, len(s.Tags))
	}
}
