// Command xmlquery loads an XML file and evaluates XPath queries against it
// through the relational store, printing matches (and, with -sql, the
// generated SQL and work counters).
//
// Usage:
//
//	xmlquery -enc dewey doc.xml "/site/regions/namerica/item[2]/name"
//	xmlquery -enc local -sql doc.xml "//keyword"
//	xmlquery -serialize doc.xml "//item[1]"
//	xmlquery -db store.oxdb "//item[2]"
package main

import (
	"flag"
	"fmt"
	"os"

	"ordxml"
)

func main() {
	encName := flag.String("enc", "dewey", "order encoding: global, local or dewey")
	showSQL := flag.Bool("sql", false, "print the generated SQL and work counters")
	serialize := flag.Bool("serialize", false, "print each match as a serialized subtree")
	dbPath := flag.String("db", "", "open a snapshot file (from xmlshred -save) instead of loading XML")
	flag.Parse()

	var store *ordxml.Store
	var doc ordxml.DocID
	var query string
	switch {
	case *dbPath != "" && flag.NArg() == 1:
		var err error
		store, err = ordxml.OpenFile(*dbPath)
		fatal(err)
		docs, err := store.Documents()
		fatal(err)
		if len(docs) == 0 {
			fmt.Fprintln(os.Stderr, "xmlquery: snapshot holds no documents")
			os.Exit(1)
		}
		doc = docs[0].ID
		query = flag.Arg(0)
	case *dbPath == "" && flag.NArg() == 2:
		enc, err := ordxml.ParseEncoding(*encName)
		fatal(err)
		store, err = ordxml.Open(ordxml.Options{Encoding: enc})
		fatal(err)
		f, err := os.Open(flag.Arg(0))
		fatal(err)
		defer f.Close()
		doc, err = store.Load(flag.Arg(0), f)
		fatal(err)
		query = flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: xmlquery [-enc E] [-sql] [-serialize] file.xml xpath\n       xmlquery -db store.oxdb xpath")
		os.Exit(2)
	}
	before := store.Counters()
	nodes, err := store.Query(doc, query)
	fatal(err)
	work := store.Counters().Sub(before)

	for i, n := range nodes {
		switch {
		case *serialize && n.Kind == ordxml.ElementNode:
			xml, err := store.Serialize(doc, n.ID)
			fatal(err)
			fmt.Printf("%d\t%s\n", i+1, xml)
		case n.Kind == ordxml.AttributeNode:
			fmt.Printf("%d\t@%s=%q\torder=%s\n", i+1, n.Tag, n.Value, n.OrderKey)
		case n.Kind == ordxml.TextNode:
			fmt.Printf("%d\ttext %q\torder=%s\n", i+1, n.Value, n.OrderKey)
		default:
			vals, err := store.QueryValues(doc, query)
			fatal(err)
			fmt.Printf("%d\t<%s> %q\torder=%s\n", i+1, n.Tag, vals[i], n.OrderKey)
		}
	}
	fmt.Printf("-- %d match(es), %s encoding\n", len(nodes), store.Encoding())
	if *showSQL {
		sqls, err := store.ExplainQuery(doc, query)
		fatal(err)
		for _, s := range sqls {
			fmt.Println("SQL:", s)
		}
		fmt.Printf("work: %d index probes, %d rows scanned\n", work.IndexProbes, work.RowsScanned)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmlquery:", err)
		os.Exit(1)
	}
}
