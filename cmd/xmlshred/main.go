// Command xmlshred loads an XML file into a store and reports how it
// shredded: row counts, storage size, and optionally a dump of the node
// table so the three encodings can be inspected side by side.
//
// Usage:
//
//	xmlshred -enc dewey doc.xml
//	xmlshred -enc global -dump 20 doc.xml
//	xmlshred -enc dewey -save store.oxdb doc.xml
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ordxml"
	"ordxml/internal/sqlgen"
)

func main() {
	encName := flag.String("enc", "dewey", "order encoding: global, local or dewey")
	gap := flag.Uint("gap", 1, "order-value gap (sparse orders)")
	dump := flag.Int("dump", 0, "dump the first N node rows")
	save := flag.String("save", "", "also save the loaded store as a snapshot file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: xmlshred [-enc global|local|dewey] [-gap N] [-dump N] file.xml")
		os.Exit(2)
	}

	enc, err := ordxml.ParseEncoding(*encName)
	fatal(err)
	store, err := ordxml.Open(ordxml.Options{Encoding: enc, Gap: uint32(*gap)})
	fatal(err)

	f, err := os.Open(flag.Arg(0))
	fatal(err)
	defer f.Close()
	doc, err := store.Load(flag.Arg(0), f)
	fatal(err)

	docs, err := store.Documents()
	fatal(err)
	st := store.Storage()
	fmt.Printf("loaded %s as document %d (%s encoding)\n", flag.Arg(0), doc, enc)
	fmt.Printf("  nodes: %d rows, %d heap pages, %d bytes (%.1f bytes/node)\n",
		st.Rows, st.HeapPages, st.HeapBytes, float64(st.HeapBytes)/float64(docs[len(docs)-1].Nodes))

	if *save != "" {
		fatal(store.SaveFile(*save))
		fmt.Printf("  snapshot written to %s (reopen with xmlquery -db %s)\n", *save, *save)
	}

	if *dump > 0 {
		table := map[ordxml.Encoding]string{
			ordxml.Global: "xg_nodes", ordxml.Local: "xl_nodes", ordxml.Dewey: "xd_nodes",
		}[enc]
		ord := map[ordxml.Encoding]string{
			ordxml.Global: "gorder", ordxml.Local: "lorder", ordxml.Dewey: "path",
		}[enc]
		rows, err := store.SQL(sqlgen.SQL(
			"SELECT id, parent, kind, tag, value, %s FROM %s WHERE doc = ? ORDER BY id LIMIT ?",
			ord, table), doc, *dump)
		fatal(err)
		fmt.Println("\n" + strings.Join(rows.Columns, "\t"))
		for _, r := range rows.Values {
			fmt.Println(strings.Join(r, "\t"))
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmlshred:", err)
		os.Exit(1)
	}
}
