// Command ordlint is the engine's static-analysis suite: a multichecker
// bundling the per-package analyzers
//
//	exhaustenc — dispatch on an order-encoding kind must cover Global, Local
//	             and Dewey or fail loudly in its default
//	pinpair    — every buffer-pool pin (Fetch/Alloc/Pin) must be released
//	             on all paths
//	rawsql     — SQL text may not be assembled with Sprintf/concatenation
//	             outside the designated SQL-generation packages
//	spanfinish — every obs span started must be finished on all paths
//	wraperr    — errors formatted into fmt.Errorf must use %w, not %v/%s
//
// and the interprocedural contract analyzers, which run once over the whole
// loaded program linked by a call graph
//
//	atomicmix  — locations accessed via sync/atomic must never be accessed
//	             plainly
//	lockorder  — the repo-wide lock acquisition graph must be acyclic
//	viewmut    — catalog.View-reachable structures are immutable once
//	             published
//	walfirst   — durable mutation paths must append to the WAL before
//	             applying engine state
//
// Standalone use (the common path):
//
//	go run ./cmd/ordlint ./...
//	go run ./cmd/ordlint -only rawsql,wraperr ./internal/core/...
//	go run ./cmd/ordlint -json ./... > ordlint.sarif
//
// Findings print one per line as file:line:col: message [analyzer]; with
// -json they render instead as a SARIF 2.1.0 log on stdout, the format CI
// code-scanning surfaces ingest. Either way the exit status is 1 when any
// finding is reported, 0 on a clean tree, and the stderr summary breaks the
// count down per analyzer. A finding is silenced only by an
// `//ordlint:ignore <analyzer> <reason>` annotation on or above its line —
// the reason is mandatory.
//
// The command also speaks enough of the vet driver protocol (-V=full, -flags,
// a single *.cfg argument) to run as `go vet -vettool=$(which ordlint)`; in
// that mode packages are type-checked from the export data the go command
// supplies rather than from source.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"ordxml/internal/lint/atomicmix"
	"ordxml/internal/lint/exhaustenc"
	"ordxml/internal/lint/framework"
	"ordxml/internal/lint/lockorder"
	"ordxml/internal/lint/pinpair"
	"ordxml/internal/lint/rawsql"
	"ordxml/internal/lint/spanfinish"
	"ordxml/internal/lint/viewmut"
	"ordxml/internal/lint/walfirst"
	"ordxml/internal/lint/wraperr"
)

// analyzers is kept sorted by name; -list and the SARIF rule table rely on
// the order being deterministic.
var analyzers = []*framework.Analyzer{
	atomicmix.Analyzer,
	exhaustenc.Analyzer,
	lockorder.Analyzer,
	pinpair.Analyzer,
	rawsql.Analyzer,
	spanfinish.Analyzer,
	viewmut.Analyzer,
	walfirst.Analyzer,
	wraperr.Analyzer,
}

// listAnalyzers renders the registry, one analyzer per line, sorted by name
// regardless of registration order (the output is covered by a golden test).
func listAnalyzers(w io.Writer) {
	sorted := append([]*framework.Analyzer(nil), analyzers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, a := range sorted {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(w, "%-12s %s\n", a.Name, doc)
	}
}

// summarize renders the stderr summary line with per-analyzer finding
// counts, names sorted: "ordlint: 3 finding(s) (lockorder 2, walfirst 1)".
func summarize(findings []framework.Finding) string {
	counts := map[string]int{}
	for _, f := range findings {
		counts[f.Analyzer]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s %d", n, counts[n]))
	}
	return fmt.Sprintf("ordlint: %d finding(s) (%s)", len(findings), strings.Join(parts, ", "))
}

// selfBuildID hashes this executable so the go command's vet cache is keyed
// to the exact tool build (a rebuilt ordlint invalidates cached results).
func selfBuildID() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil)[:16])
			}
		}
	}
	return "unknown"
}

func main() {
	// Vet driver handshake, before normal flag parsing: the go command probes
	// the tool's version and flag set, then invokes it with a single
	// unit.cfg argument per package.
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// The go command requires the last field to be "buildID=<hex>"
			// and caches vet results against it, so hash the executable.
			fmt.Printf("ordlint version devel %s buildID=%s\n", runtime.Version(), selfBuildID())
			return
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vetUnit(os.Args[1]))
	}

	var (
		list     = flag.Bool("list", false, "list the registered analyzers and exit")
		only     = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		jsonMode = flag.Bool("json", false, "emit findings as a SARIF 2.1.0 log on stdout")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ordlint [-list] [-json] [-only name,...] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the ordered-XML engine analyzers over the named packages\n")
		fmt.Fprintf(os.Stderr, "(default ./...). Exits 1 if any finding is reported.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		listAnalyzers(os.Stdout)
		return
	}

	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ordlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ordlint:", err)
		os.Exit(2)
	}
	pkgs, err := framework.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ordlint:", err)
		os.Exit(2)
	}
	findings, err := framework.RunAnalyzers(pkgs, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ordlint:", err)
		os.Exit(2)
	}
	framework.SortFindings(findings)
	if *jsonMode {
		if err := framework.WriteSARIF(os.Stdout, selected, findings, cwd); err != nil {
			fmt.Fprintln(os.Stderr, "ordlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintln(os.Stderr, summarize(findings))
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*framework.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	byName := map[string]*framework.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*framework.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(byName))
			for n := range byName {
				known = append(known, n)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// vetConfig mirrors the fields of the unit.cfg JSON file the go command
// writes for vet tools.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package unit under the vet driver protocol and
// returns the process exit code: 0 clean, 2 findings, 1 on internal error.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ordlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ordlint: parse %s: %v\n", cfgPath, err)
		return 1
	}
	// The engine's analyzers export no facts, so the vetx output is always
	// empty — but it must exist for the go command's cache.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "ordlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ordlint:", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer:    importer.ForCompiler(fset, "gc", lookup),
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil && cfg.SucceedOnTypecheckFailure {
		return 0
	}

	pkg := &framework.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: typeErrs,
	}
	findings, err := framework.RunAnalyzers([]*framework.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ordlint:", err)
		return 1
	}
	framework.SortFindings(findings)
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
