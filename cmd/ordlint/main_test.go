package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"ordxml/internal/lint/framework"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestAnalyzersSorted pins the registry invariant -list and the SARIF rule
// table rely on: registration order is name order, with no duplicates.
func TestAnalyzersSorted(t *testing.T) {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("analyzer registry not sorted by name: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate analyzer name %q", n)
		}
		seen[n] = true
	}
}

// TestListGolden locks the -list output — the analyzer catalog users and CI
// scripts parse — against testdata/list.golden. Regenerate with -update.
func TestListGolden(t *testing.T) {
	var buf bytes.Buffer
	listAnalyzers(&buf)

	golden := filepath.Join("testdata", "list.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-list output drifted from %s (run with -update to accept):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestSummarize pins the per-analyzer breakdown in the stderr summary line.
func TestSummarize(t *testing.T) {
	findings := []framework.Finding{
		{Analyzer: "walfirst"},
		{Analyzer: "lockorder"},
		{Analyzer: "lockorder"},
	}
	got := summarize(findings)
	want := "ordlint: 3 finding(s) (lockorder 2, walfirst 1)"
	if got != want {
		t.Errorf("summarize = %q, want %q", got, want)
	}
}
