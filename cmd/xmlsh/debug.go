package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"

	"ordxml"
	"ordxml/internal/obs"
)

// serveDebug serves the operational endpoint suite on addr. Every endpoint
// reads the store through the shell's guarded pointer, so open/restore in the
// REPL swap it safely; endpoints that can answer without a store do, so the
// listener is useful (and probeable) from process start.
//
//	/debug/metrics       metrics snapshot as JSON (expvar-style)
//	/debug/metrics.prom  the same metrics in Prometheus text exposition,
//	                     histograms with cumulative le buckets
//	/debug/trace         buffered request spans as Chrome trace-event JSON
//	/debug/healthz       liveness: 200 once the listener is up
//	/debug/readyz        readiness: 200 iff a store is open and healthy
//	/debug/pprof/...     net/http/pprof profiles
func serveDebug(addr string, sh *shell) {
	if err := http.ListenAndServe(addr, debugMux(sh)); err != nil {
		fmt.Fprintln(os.Stderr, "debug endpoint:", err)
	}
}

// debugMux builds the debug handler tree (split from serveDebug for tests).
func debugMux(sh *shell) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		st := sh.currentStore()
		if st == nil {
			http.Error(w, "no store open", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st.Metrics())
	})
	mux.HandleFunc("/debug/metrics.prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		st := sh.currentStore()
		up := int64(0)
		var snap obs.Snapshot
		if st != nil {
			up = 1
			snap = st.Metrics()
		}
		fmt.Fprintf(w, "# TYPE ordxml_up gauge\nordxml_up %d\n", up)
		if st != nil {
			obs.WritePrometheus(w, snap)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		st := sh.currentStore()
		if st == nil {
			fmt.Fprintln(w, `{"traceEvents":[]}`)
			return
		}
		st.WriteTrace(w)
	})
	mux.HandleFunc("/debug/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/debug/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		st := sh.currentStore()
		if st == nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(readiness{Ready: false, Problems: []string{"no store open"}})
			return
		}
		probs := st.Health()
		rdy := readiness{Ready: len(probs) == 0, Problems: probs, Gauges: readinessGauges(st)}
		if !rdy.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(rdy)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// readiness is the /debug/readyz response body.
type readiness struct {
	Ready    bool             `json:"ready"`
	Problems []string         `json:"problems,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
}

// readinessGauges picks the operational gauges worth echoing next to the
// ready verdict: WAL durability lag, checkpoint age, buffer-pool dirty ratio
// and the last integrity check's status.
func readinessGauges(st *ordxml.Store) map[string]int64 {
	m := st.Metrics()
	out := map[string]int64{}
	for _, name := range []string{
		"wal.durable_lag", "wal.checkpoint_age_ms",
		"bufpool.dirty_ratio_pct", "integrity.last_status",
	} {
		if v, ok := m.Gauges[name]; ok {
			out[name] = v
		}
	}
	return out
}
