// Command xmlsh is an interactive shell over an ordered-XML store: load
// documents, run XPath and raw SQL, apply order-preserving updates, inspect
// generated plans and work counters, and save/restore snapshots.
//
//	$ go run ./cmd/xmlsh
//	xmlsh> open dewey
//	xmlsh> loadstr <list><i>a</i><i>b</i></list>
//	xmlsh> query /list/i[2]
//	xmlsh> insert 2 before <i>a2</i>
//	xmlsh> serialize
//
// Type `help` for the full command list.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
)

func main() {
	debugAddr := flag.String("debug", "", "serve engine metrics as JSON on http://<addr>/debug/metrics")
	flag.Parse()
	sh := &shell{}
	if *debugAddr != "" {
		go serveDebug(*debugAddr, sh)
		fmt.Printf("metrics at http://%s/debug/metrics\n", *debugAddr)
	}
	fmt.Println("ordxml shell — type 'help' for commands, 'quit' to exit")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("xmlsh> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "quit" || line == "exit" {
			return
		}
		out, err := sh.Execute(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		if out != "" {
			fmt.Println(out)
		}
	}
}

// serveDebug exposes the active store's metrics snapshot as JSON, in the
// spirit of expvar: GET /debug/metrics returns counters, gauges and latency
// histograms. It reads the store through the shell's guarded pointer, so
// open/restore in the REPL swap it safely.
func serveDebug(addr string, sh *shell) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		st := sh.currentStore()
		if st == nil {
			http.Error(w, "no store open", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st.Metrics())
	})
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintln(os.Stderr, "debug endpoint:", err)
	}
}
