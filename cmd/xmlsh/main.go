// Command xmlsh is an interactive shell over an ordered-XML store: load
// documents, run XPath and raw SQL, apply order-preserving updates, inspect
// generated plans and work counters, and save/restore snapshots.
//
//	$ go run ./cmd/xmlsh
//	xmlsh> open dewey
//	xmlsh> loadstr <list><i>a</i><i>b</i></list>
//	xmlsh> query /list/i[2]
//	xmlsh> insert 2 before <i>a2</i>
//	xmlsh> serialize
//
// Type `help` for the full command list.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	debugAddr := flag.String("debug", "", "serve the debug endpoint suite on <addr> (/debug/metrics, /debug/metrics.prom, /debug/trace, /debug/healthz, /debug/readyz, /debug/pprof/)")
	flag.Parse()
	sh := &shell{}
	if *debugAddr != "" {
		go serveDebug(*debugAddr, sh)
		fmt.Printf("debug endpoints at http://%s/debug/ (metrics, metrics.prom, trace, healthz, readyz, pprof)\n", *debugAddr)
	}
	fmt.Println("ordxml shell — type 'help' for commands, 'quit' to exit")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("xmlsh> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "quit" || line == "exit" {
			return
		}
		out, err := sh.Execute(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		if out != "" {
			fmt.Println(out)
		}
	}
}
