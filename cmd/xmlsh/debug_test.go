package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get issues one request against the debug mux and returns status and body.
func get(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestDebugEndpointsNoStore(t *testing.T) {
	mux := debugMux(&shell{})

	// The probe-friendly endpoints answer 200 before any store is open.
	if code, body := get(t, mux, "/debug/healthz"); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Errorf("healthz = %d %q", code, body)
	}
	code, body := get(t, mux, "/debug/metrics.prom")
	if code != 200 || !strings.Contains(body, "ordxml_up 0") {
		t.Errorf("metrics.prom = %d %q", code, body)
	}
	code, body = get(t, mux, "/debug/trace")
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if code != 200 || json.Unmarshal([]byte(body), &doc) != nil {
		t.Errorf("trace = %d %q", code, body)
	}

	// Readiness and the JSON metrics snapshot require a store.
	if code, _ := get(t, mux, "/debug/metrics"); code != http.StatusServiceUnavailable {
		t.Errorf("metrics without store = %d, want 503", code)
	}
	code, body = get(t, mux, "/debug/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "no store open") {
		t.Errorf("readyz without store = %d %q", code, body)
	}

	// pprof is wired.
	if code, body := get(t, mux, "/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("pprof/cmdline = %d", code)
	}
}

func TestDebugEndpointsWithStore(t *testing.T) {
	sh := &shell{}
	mux := debugMux(sh)
	run(t, sh, "open dewey")
	run(t, sh, "loadstr <list><i>a</i><i>b</i></list>")
	run(t, sh, "query /list/i[2]")
	run(t, sh, `\trace on`)
	run(t, sh, "query /list/i[1]")

	code, body := get(t, mux, "/debug/readyz")
	if code != 200 {
		t.Fatalf("readyz = %d %q", code, body)
	}
	var rdy readiness
	if err := json.Unmarshal([]byte(body), &rdy); err != nil || !rdy.Ready {
		t.Fatalf("readyz body %q (err %v)", body, err)
	}

	code, body = get(t, mux, "/debug/metrics.prom")
	if code != 200 || !strings.Contains(body, "ordxml_up 1") {
		t.Fatalf("metrics.prom = %d", code)
	}
	if !strings.Contains(body, "# TYPE ordxml_") {
		t.Errorf("metrics.prom carries no typed metrics:\n%.300s", body)
	}

	code, body = get(t, mux, "/debug/metrics")
	if code != 200 || !strings.Contains(body, "counters") && !strings.Contains(body, "Counters") {
		t.Errorf("metrics = %d %.120q", code, body)
	}

	code, body = get(t, mux, "/debug/trace")
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if code != 200 {
		t.Fatalf("trace = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "xpath.query" {
			found = true
		}
	}
	if !found {
		t.Errorf("traced query missing from /debug/trace: %d events", len(doc.TraceEvents))
	}
}
