package main

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ordxml"
)

// shell is the interactive session state: one store, one current document.
// Commands are parsed and executed by Execute, which returns the text to
// print — keeping the interpreter separate from the REPL loop makes it
// testable.
//
// mu guards the store pointer only: Execute (the single command goroutine)
// swaps it on open/restore while the debug HTTP endpoint reads it
// concurrently. The Store itself is safe for concurrent readers.
type shell struct {
	mu    sync.RWMutex
	store *ordxml.Store
	doc   ordxml.DocID
}

// setStore swaps the active store (open/opendur/restore), releasing the
// previous store's write-ahead log if it was durable.
func (sh *shell) setStore(st *ordxml.Store) {
	sh.mu.Lock()
	old := sh.store
	sh.store = st
	sh.mu.Unlock()
	if old != nil {
		old.Close()
	}
}

// currentStore returns the active store for concurrent readers (the debug
// endpoint); nil when none is open.
func (sh *shell) currentStore() *ordxml.Store {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.store
}

// helpText lists every command.
const helpText = `commands:
  open <global|local|dewey> [gap]   start a fresh store
  opendur <dir> [enc] [gap] [pool]  open a durable store (write-ahead logged,
                                    crash-recovered from <dir>; a pool frame
                                    count selects the disk-paged tier)
  load <file> [name]                load an XML file as the current document
  loadstr <xml>                     load inline XML
  docs                              list documents (switch with: use <id>)
  use <id>                          select the current document
  query <xpath>                     run a query; prints node ids and order keys
  values <xpath>                    run a query; prints string values
  explain <xpath>                   show the generated SQL
  sql <select ...>                  raw SELECT against the store's relations
  insert <id> <first|last|before|after> <xml>   insert a fragment
  delete <id>                       delete a subtree
  move <id> <target> <first|last|before|after>  relocate a subtree
  set <id> <value>                  set a text/attribute value
  rename <id> <name>                rename an element/attribute
  serialize [id]                    print the document (or subtree) as XML
  check                             verify the document's storage invariants
  \check                            deep store-wide integrity check (all
                                    documents, heap pages, B+tree indexes)
  stats                             storage and work-counter summary
  parallel <n>                      set the query parallelism degree (1 = serial)
  \timeout <dur>                    session query timeout for reads (e.g. 500ms;
                                    0 removes it; no argument shows the current)
  \explain <select ...>             show the SQL engine's physical plan
  \analyze <select ...>             run with EXPLAIN ANALYZE instrumentation
                                    (per-worker actuals labeled w0=, w1=, ...)
  \stats                            engine metrics (counters, latency histograms;
                                    snapshot version/publishes, parallel queries,
                                    WAL activity and buffer-pool hit/eviction
                                    figures for durable stores)
  \checkpoint                       snapshot a durable store and rotate its log
  \slow                             slow-query log
  \trace on|off|status|clear        request tracing: record a span tree per
  \trace dump <file>                query/update into a bounded buffer, dump
                                    as Chrome trace-event JSON (Perfetto)
  trace <xpath>                     run a query; prints per-stage timings
  save <path>                       write a snapshot file
  restore <path>                    open a snapshot file
  help                              this text
  quit                              exit`

// positions maps the command spelling to insert positions.
var positions = map[string]ordxml.Position{
	"first": ordxml.FirstChild, "last": ordxml.LastChild,
	"before": ordxml.Before, "after": ordxml.After,
}

// Execute runs one command line and returns its output.
func (sh *shell) Execute(line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil
	}
	cmd, args := fields[0], fields[1:]
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), cmd))

	switch cmd {
	case "help":
		return helpText, nil
	case "open":
		if len(args) < 1 {
			return "", fmt.Errorf("usage: open <global|local|dewey> [gap]")
		}
		enc, err := ordxml.ParseEncoding(args[0])
		if err != nil {
			return "", err
		}
		var gap uint64
		if len(args) > 1 {
			if gap, err = strconv.ParseUint(args[1], 10, 32); err != nil {
				return "", fmt.Errorf("bad gap %q", args[1])
			}
		}
		store, err := ordxml.Open(ordxml.Options{Encoding: enc, Gap: uint32(gap)})
		if err != nil {
			return "", err
		}
		sh.setStore(store)
		sh.doc = 0
		return fmt.Sprintf("opened empty %s store", enc), nil
	case "opendur":
		if len(args) < 1 {
			return "", fmt.Errorf("usage: opendur <dir> [global|local|dewey] [gap] [poolframes]")
		}
		enc := ordxml.Dewey
		var err error
		if len(args) > 1 {
			if enc, err = ordxml.ParseEncoding(args[1]); err != nil {
				return "", err
			}
		}
		var gap uint64
		if len(args) > 2 {
			if gap, err = strconv.ParseUint(args[2], 10, 32); err != nil {
				return "", fmt.Errorf("bad gap %q", args[2])
			}
		}
		var frames int
		if len(args) > 3 {
			if frames, err = strconv.Atoi(args[3]); err != nil || frames < 1 {
				return "", fmt.Errorf("bad pool frame count %q", args[3])
			}
		}
		store, err := ordxml.OpenDurable(args[0], ordxml.Options{
			Encoding: enc, Gap: uint32(gap), BufferPoolFrames: frames,
		})
		if err != nil {
			return "", err
		}
		sh.setStore(store)
		sh.doc = 0
		docs, err := store.Documents()
		if err != nil {
			return "", err
		}
		if len(docs) > 0 {
			sh.doc = docs[0].ID
		}
		tier := "full-snapshot"
		if store.Pooled() {
			tier = "disk-paged"
		}
		return fmt.Sprintf("opened durable %s store in %s (%s tier, %d document(s) recovered)",
			store.Encoding(), args[0], tier, len(docs)), nil
	case "restore":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: restore <path>")
		}
		store, err := ordxml.OpenFile(args[0])
		if err != nil {
			return "", err
		}
		sh.setStore(store)
		sh.doc = 0
		if docs, err := store.Documents(); err == nil && len(docs) > 0 {
			sh.doc = docs[0].ID
		}
		return fmt.Sprintf("restored %s store from %s", store.Encoding(), args[0]), nil
	}

	if sh.store == nil {
		return "", fmt.Errorf("no store open (use: open dewey)")
	}

	switch cmd {
	case "load":
		if len(args) < 1 {
			return "", fmt.Errorf("usage: load <file> [name]")
		}
		name := args[0]
		if len(args) > 1 {
			name = args[1]
		}
		f, err := os.Open(args[0])
		if err != nil {
			return "", err
		}
		defer f.Close()
		doc, err := sh.store.Load(name, f)
		if err != nil {
			return "", err
		}
		sh.doc = doc
		return fmt.Sprintf("loaded document %d", doc), nil
	case "loadstr":
		if rest == "" {
			return "", fmt.Errorf("usage: loadstr <xml>")
		}
		doc, err := sh.store.LoadString("inline", rest)
		if err != nil {
			return "", err
		}
		sh.doc = doc
		return fmt.Sprintf("loaded document %d", doc), nil
	case "docs":
		docs, err := sh.store.Documents()
		if err != nil {
			return "", err
		}
		var sb strings.Builder
		for _, d := range docs {
			marker := " "
			if d.ID == sh.doc {
				marker = "*"
			}
			fmt.Fprintf(&sb, "%s %d\t%s\t%d nodes\n", marker, d.ID, d.Name, d.Nodes)
		}
		return strings.TrimRight(sb.String(), "\n"), nil
	case "use":
		id, err := parseID(args, 0, "use <id>")
		if err != nil {
			return "", err
		}
		sh.doc = id
		return fmt.Sprintf("using document %d", id), nil
	case "save":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: save <path>")
		}
		if err := sh.store.SaveFile(args[0]); err != nil {
			return "", err
		}
		return "saved " + args[0], nil
	case "stats":
		st := sh.store.Storage()
		c := sh.store.Counters()
		return fmt.Sprintf("storage: %d rows, %d pages, %d bytes\nwork: %d probes, %d scanned, %d ins, %d del, %d upd",
			st.Rows, st.HeapPages, st.HeapBytes,
			c.IndexProbes, c.RowsScanned, c.RowsInserted, c.RowsDeleted, c.RowsUpdated), nil
	case "parallel":
		if len(args) != 1 {
			return "", fmt.Errorf("usage: parallel <n>")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 {
			return "", fmt.Errorf("bad parallelism %q (want a positive integer)", args[0])
		}
		sh.store.SetParallelism(n)
		return fmt.Sprintf("parallelism set to %d", sh.store.Parallelism()), nil
	case `\timeout`:
		if len(args) == 0 {
			if d := sh.store.QueryTimeout(); d > 0 {
				return fmt.Sprintf("query timeout %s", d), nil
			}
			return "no query timeout", nil
		}
		d, err := time.ParseDuration(args[0])
		if err != nil && args[0] == "0" {
			d, err = 0, nil
		}
		if err != nil || d < 0 {
			return "", fmt.Errorf("bad timeout %q (want a duration like 500ms, or 0)", args[0])
		}
		sh.store.SetQueryTimeout(d)
		if d == 0 {
			return "query timeout removed", nil
		}
		return fmt.Sprintf("query timeout set to %s (reads past it fail with %v)", d, ordxml.ErrDeadlineExceeded), nil
	case `\explain`:
		if rest == "" {
			return "", fmt.Errorf(`usage: \explain <select ...>`)
		}
		text, err := sh.store.ExplainSQL(rest)
		if err != nil {
			return "", err
		}
		return strings.TrimRight(text, "\n"), nil
	case `\analyze`:
		if rest == "" {
			return "", fmt.Errorf(`usage: \analyze <select ...>`)
		}
		text, err := sh.store.ExplainAnalyzeSQL(rest)
		if err != nil {
			return "", err
		}
		return strings.TrimRight(labelWorkerRows(text), "\n"), nil
	case `\stats`:
		m := sh.store.Metrics()
		out := fmt.Sprintf("snapshot: version %d, %d publishes; parallelism %d (%d parallel queries)\n%s",
			m.Gauges["sqldb.view.version"], m.Counters["sqldb.view.publishes"],
			sh.store.Parallelism(), m.Counters["sqldb.query.parallel"],
			renderMetrics(m))
		if w, ok := sh.store.WALStats(); ok {
			ckpt := "never"
			if !w.LastCheckpoint.IsZero() {
				ckpt = time.Since(w.LastCheckpoint).Round(time.Millisecond).String() + " ago"
			}
			out = fmt.Sprintf("wal: %d records (%d bytes), %d fsyncs, %d rotations, last LSN %d, durable LSN %d, %d bytes on disk, last checkpoint %s\n%s",
				w.Records, w.Bytes, w.Fsyncs, w.Rotations, w.LastLSN, w.DurableLSN, w.SizeBytes, ckpt, out)
		}
		if p, ok := sh.store.PoolStats(); ok {
			hitPct := 0.0
			if acc := p.Hits + p.Misses; acc > 0 {
				hitPct = 100 * float64(p.Hits) / float64(acc)
			}
			out = fmt.Sprintf("bufpool: %d/%d frames resident (%d dirty, %d pinned), %.1f%% hit ratio (%d hits, %d misses), %d evictions, %d dirty flushes\n%s",
				p.Resident, p.Capacity, p.Dirty, p.Pinned, hitPct, p.Hits, p.Misses, p.Evictions, p.DirtyFlushes, out)
		}
		if ok, cause := sh.store.Degraded(); ok {
			out = fmt.Sprintf("DEGRADED: read-only (%s); reads serve, mutations fail, reopen to recover\n%s", cause, out)
		}
		return out, nil
	case `\checkpoint`:
		if err := sh.store.Checkpoint(); err != nil {
			return "", err
		}
		w, _ := sh.store.WALStats()
		return fmt.Sprintf("checkpoint complete (snapshot written, log rotated after LSN %d)", w.LastLSN), nil
	case `\trace`:
		if len(args) == 0 {
			return "", fmt.Errorf(`usage: \trace on|off|status|clear|dump <file>`)
		}
		tr := sh.store.Tracer()
		switch args[0] {
		case "on":
			tr.SetEnabled(true)
			return "request tracing on (run queries, then: \\trace dump <file>)", nil
		case "off":
			tr.SetEnabled(false)
			return "request tracing off", nil
		case "status":
			state := "off"
			if tr.Enabled() {
				state = "on"
			}
			return fmt.Sprintf("tracing %s: %d span(s) buffered (capacity %d, %d overwritten)",
				state, len(tr.Snapshot()), tr.Capacity(), tr.Dropped()), nil
		case "clear":
			tr.Reset()
			return "trace buffer cleared", nil
		case "dump":
			if len(args) != 2 {
				return "", fmt.Errorf(`usage: \trace dump <file>`)
			}
			f, err := os.Create(args[1])
			if err != nil {
				return "", err
			}
			n, werr := sh.store.WriteTrace(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return "", werr
			}
			return fmt.Sprintf("wrote %d span(s) to %s (Chrome trace format — open in Perfetto)", n, args[1]), nil
		default:
			return "", fmt.Errorf(`usage: \trace on|off|status|clear|dump <file>`)
		}
	case `\slow`:
		slow := sh.store.SlowQueries()
		if len(slow) == 0 {
			return "slow-query log empty", nil
		}
		var sb strings.Builder
		for _, q := range slow {
			rows := "-"
			if q.Rows >= 0 {
				rows = strconv.Itoa(q.Rows)
			}
			fmt.Fprintf(&sb, "%-12s rows=%-6s %s\n", q.Duration, rows, q.SQL)
		}
		return strings.TrimRight(sb.String(), "\n"), nil
	}

	if sh.doc == 0 {
		return "", fmt.Errorf("no document loaded (use: loadstr <xml>)")
	}

	switch cmd {
	case "query":
		nodes, err := sh.store.Query(sh.doc, rest)
		if err != nil {
			return "", err
		}
		var sb strings.Builder
		for _, n := range nodes {
			label := "<" + n.Tag + ">"
			switch n.Kind {
			case ordxml.AttributeNode:
				label = "@" + n.Tag + "=" + n.Value
			case ordxml.TextNode:
				label = strconv.Quote(n.Value)
			}
			fmt.Fprintf(&sb, "#%d\t%s\torder=%s\n", n.ID, label, n.OrderKey)
		}
		fmt.Fprintf(&sb, "%d match(es)", len(nodes))
		return sb.String(), nil
	case "values":
		vals, err := sh.store.QueryValues(sh.doc, rest)
		if err != nil {
			return "", err
		}
		return strings.Join(vals, "\n"), nil
	case "explain":
		sqls, err := sh.store.ExplainQuery(sh.doc, rest)
		if err != nil {
			return "", err
		}
		return strings.Join(sqls, "\n"), nil
	case "trace":
		nodes, stages, err := sh.store.QueryTrace(sh.doc, rest)
		if err != nil {
			return "", err
		}
		var sb strings.Builder
		for _, st := range stages {
			fmt.Fprintf(&sb, "%-10s %-12s x%d\n", st.Name, st.Dur, st.Count)
		}
		fmt.Fprintf(&sb, "%d match(es)", len(nodes))
		return sb.String(), nil
	case "sql":
		rows, err := sh.store.SQL(rest)
		if err != nil {
			return "", err
		}
		var sb strings.Builder
		sb.WriteString(strings.Join(rows.Columns, "\t"))
		for _, r := range rows.Values {
			sb.WriteString("\n" + strings.Join(r, "\t"))
		}
		return sb.String(), nil
	case "insert":
		if len(args) < 3 {
			return "", fmt.Errorf("usage: insert <id> <first|last|before|after> <xml>")
		}
		id, err := parseID(args, 0, "")
		if err != nil {
			return "", err
		}
		pos, ok := positions[args[1]]
		if !ok {
			return "", fmt.Errorf("bad position %q (want %s)", args[1], positionNames())
		}
		frag := strings.TrimSpace(strings.SplitN(rest, args[1], 2)[1])
		rep, err := sh.store.Insert(sh.doc, id, pos, frag)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("inserted %d node(s) as #%d, renumbered %d row(s)",
			rep.RowsInserted, rep.NewID, rep.RowsRenumbered), nil
	case "delete":
		id, err := parseID(args, 0, "delete <id>")
		if err != nil {
			return "", err
		}
		rep, err := sh.store.Delete(sh.doc, id)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("deleted %d row(s)", rep.RowsDeleted), nil
	case "move":
		if len(args) != 3 {
			return "", fmt.Errorf("usage: move <id> <target> <first|last|before|after>")
		}
		id, err := parseID(args, 0, "")
		if err != nil {
			return "", err
		}
		target, err := parseID(args, 1, "")
		if err != nil {
			return "", err
		}
		pos, ok := positions[args[2]]
		if !ok {
			return "", fmt.Errorf("bad position %q (want %s)", args[2], positionNames())
		}
		rep, err := sh.store.Move(sh.doc, id, target, pos)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("moved as #%d, renumbered %d row(s)", rep.NewID, rep.RowsRenumbered), nil
	case "set":
		if len(args) < 2 {
			return "", fmt.Errorf("usage: set <id> <value>")
		}
		id, err := parseID(args, 0, "")
		if err != nil {
			return "", err
		}
		value := strings.TrimSpace(strings.TrimPrefix(rest, args[0]))
		if err := sh.store.SetValue(sh.doc, id, value); err != nil {
			return "", err
		}
		return "ok", nil
	case "rename":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: rename <id> <name>")
		}
		id, err := parseID(args, 0, "")
		if err != nil {
			return "", err
		}
		if err := sh.store.Rename(sh.doc, id, args[1]); err != nil {
			return "", err
		}
		return "ok", nil
	case "check":
		problems, err := sh.store.Check(sh.doc)
		if err != nil {
			return "", err
		}
		if len(problems) == 0 {
			return "consistent", nil
		}
		return strings.Join(problems, "\n"), nil
	case `\check`:
		problems, err := sh.store.CheckIntegrity()
		if err != nil {
			return "", err
		}
		if len(problems) == 0 {
			return "store consistent (all documents, heaps and indexes)", nil
		}
		return strings.Join(problems, "\n"), nil
	case "serialize":
		if len(args) == 1 {
			id, err := parseID(args, 0, "")
			if err != nil {
				return "", err
			}
			return sh.store.Serialize(sh.doc, id)
		}
		return sh.store.SerializeDocument(sh.doc)
	default:
		return "", fmt.Errorf("unknown command %q (try: help)", cmd)
	}
}

// workerRowsRE matches the engine's compact per-worker actuals annotation,
// e.g. "workers rows=120/98/101/104".
var workerRowsRE = regexp.MustCompile(`workers rows=([0-9]+(?:/[0-9]+)+)`)

// labelWorkerRows expands the compact per-worker row breakdown into
// explicitly labeled counts ("w0=120 w1=98 ...") for interactive reading.
func labelWorkerRows(text string) string {
	return workerRowsRE.ReplaceAllStringFunc(text, func(m string) string {
		counts := strings.Split(strings.TrimPrefix(m, "workers rows="), "/")
		parts := make([]string, len(counts))
		for i, c := range counts {
			parts[i] = fmt.Sprintf("w%d=%s", i, c)
		}
		return "workers " + strings.Join(parts, " ")
	})
}

func parseID(args []string, i int, usage string) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("usage: %s", usage)
	}
	id, err := strconv.ParseInt(strings.TrimPrefix(args[i], "#"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad node id %q", args[i])
	}
	return id, nil
}

// renderMetrics formats a metrics snapshot: counters and gauges one per
// line, then histograms with count/mean/quantiles.
func renderMetrics(m ordxml.Metrics) string {
	var sb strings.Builder
	for _, n := range m.CounterNames() {
		fmt.Fprintf(&sb, "%-32s %d\n", n, m.Counters[n])
	}
	for _, n := range m.GaugeNames() {
		fmt.Fprintf(&sb, "%-32s %d\n", n, m.Gauges[n])
	}
	for _, n := range m.HistogramNames() {
		h := m.Histograms[n]
		fmt.Fprintf(&sb, "%-32s count=%d mean=%s p50=%s p95=%s p99=%s max=%s\n",
			n, h.Count, h.Mean(), h.P50, h.P95, h.P99, h.Max)
	}
	return strings.TrimRight(sb.String(), "\n")
}

func positionNames() string {
	names := make([]string, 0, len(positions))
	for n := range positions {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
