package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// run executes a command and fails the test on error.
func run(t *testing.T, sh *shell, line string) string {
	t.Helper()
	out, err := sh.Execute(line)
	if err != nil {
		t.Fatalf("%q: %v", line, err)
	}
	return out
}

// mustFail executes a command expecting an error.
func mustFail(t *testing.T, sh *shell, line string) {
	t.Helper()
	if out, err := sh.Execute(line); err == nil {
		t.Fatalf("%q succeeded: %s", line, out)
	}
}

func TestShellSession(t *testing.T) {
	sh := &shell{}

	// Commands before a store is open fail cleanly.
	mustFail(t, sh, "loadstr <a/>")
	mustFail(t, sh, "query /a")
	mustFail(t, sh, "bogus")
	if out := run(t, sh, "help"); !strings.Contains(out, "serialize") {
		t.Errorf("help = %.60s", out)
	}
	if out := run(t, sh, ""); out != "" {
		t.Errorf("empty line output: %q", out)
	}

	run(t, sh, "open dewey 8")
	mustFail(t, sh, "open nope")
	mustFail(t, sh, "query /a") // store open, no document

	run(t, sh, "loadstr <list><i>a</i><i>b</i><i>c</i></list>")
	out := run(t, sh, "query /list/i[2]")
	if !strings.Contains(out, "1 match(es)") || !strings.Contains(out, "<i>") {
		t.Errorf("query output: %s", out)
	}
	if out := run(t, sh, "values /list/i"); out != "a\nb\nc" {
		t.Errorf("values output: %q", out)
	}
	if out := run(t, sh, "explain /list/i"); !strings.Contains(out, "SELECT") {
		t.Errorf("explain output: %s", out)
	}
	if out := run(t, sh, "sql SELECT COUNT(*) FROM xd_nodes"); !strings.Contains(out, "7") {
		t.Errorf("sql output: %s", out)
	}

	// Mutations: insert before the second item, set a value, rename, move.
	out = run(t, sh, "query /list/i[2]")
	id := strings.Fields(out)[0] // "#N"
	run(t, sh, "insert "+id+" before <i>a2</i>")
	if out := run(t, sh, "values /list/i"); out != "a\na2\nb\nc" {
		t.Errorf("after insert: %q", out)
	}
	out = run(t, sh, "query /list/i[1]/text()")
	textID := strings.Fields(out)[0]
	run(t, sh, "set "+textID+" alpha")
	if out := run(t, sh, "values /list/i[1]"); out != "alpha" {
		t.Errorf("after set: %q", out)
	}
	out = run(t, sh, "query /list/i[4]")
	lastID := strings.Fields(out)[0]
	run(t, sh, "rename "+lastID+" z")
	if out := run(t, sh, "values /list/z"); out != "c" {
		t.Errorf("after rename: %q", out)
	}
	out = run(t, sh, "query /list/z")
	zID := strings.Fields(out)[0]
	out = run(t, sh, "query /list/i[1]")
	firstID := strings.Fields(out)[0]
	run(t, sh, "move "+zID+" "+firstID+" before")
	if out := run(t, sh, "serialize"); !strings.HasPrefix(out, "<list><z>c</z>") {
		t.Errorf("after move: %s", out)
	}
	out = run(t, sh, "query /list/i[2]")
	run(t, sh, "delete "+strings.Fields(out)[0])

	// Stats and docs listing.
	if out := run(t, sh, "stats"); !strings.Contains(out, "storage:") {
		t.Errorf("stats: %s", out)
	}
	if out := run(t, sh, "docs"); !strings.Contains(out, "* 1") {
		t.Errorf("docs: %s", out)
	}

	// Snapshot round trip through a fresh shell.
	path := filepath.Join(t.TempDir(), "s.oxdb")
	run(t, sh, "save "+path)
	want := run(t, sh, "serialize")
	sh2 := &shell{}
	run(t, sh2, "restore "+path)
	if got := run(t, sh2, "serialize"); got != want {
		t.Errorf("snapshot round trip: %s vs %s", got, want)
	}

	// Error paths with arguments.
	mustFail(t, sh, "insert 1 sideways <x/>")
	mustFail(t, sh, "insert notanid before <x/>")
	mustFail(t, sh, "delete 9999")
	mustFail(t, sh, "use")
	mustFail(t, sh, "restore /nonexistent")
	mustFail(t, sh, "sql DELETE FROM xd_nodes")
}

func TestShellMultipleDocuments(t *testing.T) {
	sh := &shell{}
	run(t, sh, "open local")
	run(t, sh, "loadstr <a>one</a>")
	run(t, sh, "loadstr <b>two</b>")
	if out := run(t, sh, "values /b"); out != "two" {
		t.Errorf("current doc: %q", out)
	}
	run(t, sh, "use 1")
	if out := run(t, sh, "values /a"); out != "one" {
		t.Errorf("after use 1: %q", out)
	}
}

func TestShellLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.xml")
	if err := os.WriteFile(path, []byte("<a><b>x</b></a>"), 0o644); err != nil {
		t.Fatal(err)
	}
	sh := &shell{}
	run(t, sh, "open global")
	run(t, sh, "load "+path+" mydoc")
	if out := run(t, sh, "values /a/b"); out != "x" {
		t.Errorf("values = %q", out)
	}
	if out := run(t, sh, "docs"); !strings.Contains(out, "mydoc") {
		t.Errorf("docs = %q", out)
	}
	mustFail(t, sh, "load /nonexistent.xml")
	if out := run(t, sh, "check"); out != "consistent" {
		t.Errorf("check = %q", out)
	}
}

func TestShellDurableStore(t *testing.T) {
	dir := t.TempDir()
	sh := &shell{}
	run(t, sh, "opendur "+dir+" dewey")
	run(t, sh, "loadstr <a><b>x</b></a>")
	if out := run(t, sh, `\stats`); !strings.Contains(out, "wal: 1 records") ||
		!strings.Contains(out, "last LSN 1") {
		t.Errorf("\\stats lacks WAL summary: %q", out)
	}
	if out := run(t, sh, `\checkpoint`); !strings.Contains(out, "log rotated after LSN 1") {
		t.Errorf("\\checkpoint = %q", out)
	}
	run(t, sh, "insert 2 after <c>y</c>")

	// A fresh shell recovers the snapshot plus the post-checkpoint insert.
	sh2 := &shell{}
	if out := run(t, sh2, "opendur "+dir); !strings.Contains(out, "1 document(s) recovered") {
		t.Errorf("opendur = %q", out)
	}
	if out := run(t, sh2, "serialize"); out != "<a><b>x</b><c>y</c></a>" {
		t.Errorf("recovered doc = %q", out)
	}
	mustFail(t, sh2, "opendur")
	// Memory stores refuse \checkpoint.
	sh3 := &shell{}
	run(t, sh3, "open global")
	mustFail(t, sh3, `\checkpoint`)
}

// TestShellParallelAndSnapshotStats covers the concurrency-era surface: the
// parallel command, the snapshot summary line of \stats, and the labeled
// per-worker actuals of \analyze.
func TestShellParallelAndSnapshotStats(t *testing.T) {
	sh := &shell{}
	run(t, sh, "open global")
	var doc strings.Builder
	doc.WriteString("<catalog>")
	for i := 0; i < 1500; i++ {
		doc.WriteString("<item>v</item>")
	}
	doc.WriteString("</catalog>")
	run(t, sh, "loadstr "+doc.String())

	mustFail(t, sh, "parallel")
	mustFail(t, sh, "parallel zero")
	if out := run(t, sh, "parallel 4"); out != "parallelism set to 4" {
		t.Errorf("parallel: %q", out)
	}

	out := run(t, sh, `\analyze SELECT kind, COUNT(*) FROM xg_nodes GROUP BY kind ORDER BY kind`)
	if !strings.Contains(out, "Gather workers=4") {
		t.Errorf("\\analyze lacks exchange operator:\n%s", out)
	}
	if !strings.Contains(out, "workers w0=") || !strings.Contains(out, " w3=") {
		t.Errorf("\\analyze lacks labeled per-worker actuals:\n%s", out)
	}

	out = run(t, sh, `\stats`)
	if !strings.Contains(out, "snapshot: version ") ||
		!strings.Contains(out, "parallelism 4 (") {
		t.Errorf("\\stats lacks snapshot/parallel summary: %.120q", out)
	}
	if !strings.Contains(out, "sqldb.view.publishes") ||
		!strings.Contains(out, "sqldb.query.parallel") {
		t.Errorf("\\stats lacks view/parallel metrics: %.200q", out)
	}
}

func TestLabelWorkerRows(t *testing.T) {
	in := "SeqScan parallel t (actual rows=10 loops=4) [workers rows=3/3/2/2]\nrows=5/2 outside"
	want := "SeqScan parallel t (actual rows=10 loops=4) [workers w0=3 w1=3 w2=2 w3=2]\nrows=5/2 outside"
	if got := labelWorkerRows(in); got != want {
		t.Errorf("labelWorkerRows:\n got %q\nwant %q", got, want)
	}
}

func TestShellTimeoutCommand(t *testing.T) {
	sh := &shell{}
	mustFail(t, sh, `\timeout 1s`) // no store yet
	run(t, sh, "open dewey")
	run(t, sh, "loadstr <a><b>x</b></a>")
	if out := run(t, sh, `\timeout`); out != "no query timeout" {
		t.Errorf("\\timeout: %q", out)
	}
	if out := run(t, sh, `\timeout 250ms`); !strings.Contains(out, "250ms") {
		t.Errorf("\\timeout 250ms: %q", out)
	}
	if out := run(t, sh, `\timeout`); !strings.Contains(out, "250ms") {
		t.Errorf("\\timeout status: %q", out)
	}
	mustFail(t, sh, `\timeout -5s`)
	mustFail(t, sh, `\timeout soon`)
	if out := run(t, sh, `\timeout 0`); !strings.Contains(out, "removed") {
		t.Errorf("\\timeout 0: %q", out)
	}
	if out := run(t, sh, "query /a/b"); !strings.Contains(out, "1 match(es)") {
		t.Errorf("query after timeout removal: %q", out)
	}
}
