// Command xmlbench runs the experiment suite (E1–E9) that reproduces the
// paper's tables and figures, printing one result table per experiment.
//
// Usage:
//
//	xmlbench [-exp E3] [-items 200] [-quick] [-json] [-stats] [-obs [-obs-out BENCH_obs.json]]
//	xmlbench -concurrency 1,4,8 [-duration 2s] [-concurrency-out BENCH_concurrency.json]
//	xmlbench -shed 1,2,4,8,16 [-shed-active 2] [-duration 2s] [-shed-out BENCH_shed.json]
//
// Without -exp it runs every experiment. -quick shrinks workload sizes for a
// fast smoke run; EXPERIMENTS.md records full-size results. -json emits one
// machine-readable JSON object (schema_version, results, and with -stats a
// stage_breakdown) on stdout instead of the aligned text tables. -stats
// additionally runs the E3 query suite under stage tracing and reports where
// each encoding spends its query time (parse/translate/exec/post/sort).
//
// -concurrency switches to the closed-loop concurrent-read benchmark: at
// each listed goroutine count, that many readers cycle the E3 query mix
// against a shared store for -duration, per encoding. The table goes to
// stdout and the machine-readable report (throughput, latency quantiles,
// speedup vs. the 1-goroutine baseline) is written to -concurrency-out.
//
// -obs additionally measures request-tracing overhead: the E3 query suite is
// timed with the tracer off and again with it on (same warmed store), per
// encoding, plus one traced pass over a disk-paged durable store recording
// the WAL and buffer-pool activity. The report lands in the -json object's
// "obs" field and, with -obs-out, in its own JSON file.
//
// -shed switches to the load-shedding benchmark: the store's admission gate
// is fixed at -shed-active slots while the offered closed-loop client count
// sweeps the -shed list, per encoding. The report (admitted throughput, shed
// rate, admitted-request latency quantiles) demonstrates graceful
// degradation — past saturation the shed rate climbs while admitted p99
// stays bounded — and is written to -shed-out.
//
// -pool switches to the buffer-pool benchmark: at each listed frame count,
// the catalog document is loaded into a disk-paged durable store and the
// load, query (hit ratio, evictions) and full-vs-incremental checkpoint
// costs are measured, per encoding. The table goes to stdout and the JSON
// report is written to -pool-out.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ordxml/internal/bench"
)

// jsonSchemaVersion identifies the -json output shape; bump on breaking
// changes. The shape is documented in EXPERIMENTS.md.
const jsonSchemaVersion = 1

// jsonResult is the machine-readable form of one experiment's table: the
// header names the columns, each row holds the rendered cell values.
type jsonResult struct {
	Experiment string     `json:"experiment"`
	Reference  string     `json:"reference"`
	Title      string     `json:"title"`
	Note       string     `json:"note,omitempty"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
}

// jsonOutput is the top-level -json document.
type jsonOutput struct {
	SchemaVersion  int                          `json:"schema_version"`
	Results        []jsonResult                 `json:"results"`
	StageBreakdown map[string][]bench.StageStat `json:"stage_breakdown,omitempty"`
	Obs            *bench.ObsReport             `json:"obs,omitempty"`
}

func main() {
	exp := flag.String("exp", "", "run one experiment (E1..E9); default all")
	items := flag.Int("items", 200, "catalog items per region for query/update experiments")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	asJSON := flag.Bool("json", false, "emit results as a JSON object instead of text tables")
	stats := flag.Bool("stats", false, "also report the XPath pipeline stage breakdown over the E3 suite")
	concurrency := flag.String("concurrency", "", "run the concurrent-read benchmark at these goroutine counts (e.g. 1,4,8)")
	duration := flag.Duration("duration", 2*time.Second, "measurement window per concurrency level")
	concOut := flag.String("concurrency-out", "BENCH_concurrency.json", "where -concurrency writes its JSON report")
	pool := flag.String("pool", "", "run the buffer-pool benchmark at these frame counts (e.g. 32,256,1024)")
	poolOut := flag.String("pool-out", "BENCH_bufpool.json", "where -pool writes its JSON report")
	shed := flag.String("shed", "", "run the load-shedding benchmark at these offered client counts (e.g. 1,2,4,8,16)")
	shedActive := flag.Int("shed-active", 2, "admission gate size (active slots) for -shed")
	shedOut := flag.String("shed-out", "BENCH_shed.json", "where -shed writes its JSON report")
	obs := flag.Bool("obs", false, "also measure request-tracing overhead on the E3 suite (tracer off vs on)")
	obsOut := flag.String("obs-out", "", "where -obs writes its JSON report (empty: stdout/-json only)")
	flag.Parse()

	if *concurrency != "" {
		if err := runConcurrency(*concurrency, *items, *quick, *duration, *concOut); err != nil {
			fmt.Fprintf(os.Stderr, "concurrency benchmark failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *pool != "" {
		if err := runPool(*pool, *items, *quick, *poolOut); err != nil {
			fmt.Fprintf(os.Stderr, "buffer-pool benchmark failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *shed != "" {
		if err := runShed(*shed, *items, *shedActive, *quick, *duration, *shedOut); err != nil {
			fmt.Fprintf(os.Stderr, "shed benchmark failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	sizes := []int{50, 200, 800}
	reps := 20
	inserts := 200
	if *quick {
		sizes = []int{20, 50}
		reps = 3
		inserts = 40
		if *items > 50 {
			*items = 50
		}
	}

	type runner struct {
		id  string
		fn  func() (bench.Table, error)
		ref string
	}
	runners := []runner{
		{"E1", func() (bench.Table, error) { return bench.RunE1(sizes) }, "storage-cost table"},
		{"E2", func() (bench.Table, error) { return bench.RunE2(sizes, reps/4+1) }, "bulk-load figure"},
		{"E3", func() (bench.Table, error) { return bench.RunE3(*items, reps) }, "ordered-query figures"},
		{"E4", func() (bench.Table, error) { return bench.RunE4(*items) }, "update-by-position figure"},
		{"E5", func() (bench.Table, error) { return bench.RunE5(sizes) }, "update-vs-size figure"},
		{"E6", func() (bench.Table, error) { return bench.RunE6(*items, inserts, []uint32{1, 4, 16, 64}) }, "gap amortization"},
		{"E7", func() (bench.Table, error) { return bench.RunE7(*items, reps/4+1) }, "reconstruction figure"},
		{"E8", func() (bench.Table, error) { return bench.RunE8(*items, reps) }, "Dewey codec ablation"},
		{"E9", func() (bench.Table, error) { return bench.RunE9(sizes, reps/2+1) }, "query scaling"},
	}

	want := strings.ToUpper(*exp)
	ran := false
	var results []jsonResult
	for _, r := range runners {
		if want != "" && r.id != want {
			continue
		}
		ran = true
		t, err := r.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.id, err)
			os.Exit(1)
		}
		if *asJSON {
			results = append(results, jsonResult{
				Experiment: r.id,
				Reference:  r.ref,
				Title:      strings.TrimPrefix(t.Title, r.id+": "),
				Note:       t.Note,
				Header:     t.Header,
				Rows:       t.Rows,
			})
			continue
		}
		t.Title = r.id + " (" + r.ref + ") — " + strings.TrimPrefix(t.Title, r.id+": ")
		fmt.Println(t.String())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E9)\n", *exp)
		os.Exit(2)
	}
	var breakdown map[string][]bench.StageStat
	if *stats {
		statReps := reps
		if statReps > 5 {
			statReps = 5
		}
		var err error
		breakdown, err = bench.StageBreakdown(*items, statReps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stage breakdown failed: %v\n", err)
			os.Exit(1)
		}
		if !*asJSON {
			fmt.Println(bench.StageTable(breakdown).String())
		}
	}
	var obsRep *bench.ObsReport
	if *obs {
		obsReps := reps
		if obsReps > 5 {
			obsReps = 5
		}
		var err error
		obsRep, err = bench.RunObsOverhead(*items, obsReps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracing-overhead benchmark failed: %v\n", err)
			os.Exit(1)
		}
		if !*asJSON {
			fmt.Println(bench.ObsTable(obsRep).String())
		}
		if *obsOut != "" {
			data, err := json.MarshalIndent(obsRep, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "encode obs report: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*obsOut, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", *obsOut, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "tracing-overhead report written to %s\n", *obsOut)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := jsonOutput{SchemaVersion: jsonSchemaVersion, Results: results, StageBreakdown: breakdown, Obs: obsRep}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "encode results: %v\n", err)
			os.Exit(1)
		}
	}
}

// runConcurrency parses the goroutine-count list, runs the closed-loop
// concurrent-read benchmark, prints the table and writes the JSON report.
func runConcurrency(levels string, items int, quick bool, window time.Duration, outPath string) error {
	var counts []int
	for _, f := range strings.Split(levels, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -concurrency list %q: each entry must be a positive integer", levels)
		}
		counts = append(counts, n)
	}
	if quick {
		if items > 50 {
			items = 50
		}
		if window > 500*time.Millisecond {
			window = 500 * time.Millisecond
		}
	}
	rep, err := bench.RunConcurrency(items, counts, window)
	if err != nil {
		return err
	}
	fmt.Println(bench.ConcurrencyTable(rep).String())
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", outPath)
	return nil
}

// runShed parses the offered-client list, runs the load-shedding benchmark,
// prints the table and writes the JSON report.
func runShed(levels string, items, maxActive int, quick bool, window time.Duration, outPath string) error {
	var offered []int
	for _, f := range strings.Split(levels, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -shed list %q: each entry must be a positive integer", levels)
		}
		offered = append(offered, n)
	}
	if maxActive < 1 {
		return fmt.Errorf("bad -shed-active %d: want a positive integer", maxActive)
	}
	if quick {
		if items > 50 {
			items = 50
		}
		if window > 500*time.Millisecond {
			window = 500 * time.Millisecond
		}
	}
	rep, err := bench.RunShed(items, offered, maxActive, window)
	if err != nil {
		return err
	}
	fmt.Println(bench.ShedTable(rep).String())
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", outPath)
	return nil
}

// runPool parses the frame-count list, runs the buffer-pool benchmark,
// prints the table and writes the JSON report.
func runPool(levels string, items int, quick bool, outPath string) error {
	var frames []int
	for _, f := range strings.Split(levels, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -pool list %q: each entry must be a positive integer", levels)
		}
		frames = append(frames, n)
	}
	reps := 10
	if quick {
		if items > 50 {
			items = 50
		}
		reps = 2
	}
	rep, err := bench.RunPool(items, frames, reps)
	if err != nil {
		return err
	}
	fmt.Println(bench.PoolTable(rep).String())
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", outPath)
	return nil
}
