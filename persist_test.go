package ordxml

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"ordxml/internal/xmlgen"
)

// randomXML renders a deterministic random document for snapshot tests.
func randomXML(seed int64) string {
	return xmlgen.Random(xmlgen.DefaultRandom(seed)).String()
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, opts := range []Options{
		{Encoding: Global},
		{Encoding: Local, Gap: 8},
		{Encoding: Dewey},
		{Encoding: Dewey, DeweyAsText: true},
	} {
		s, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := s.LoadString("d", testDoc)
		if err != nil {
			t.Fatal(err)
		}
		// Mutate before saving so the snapshot captures updates too.
		hits, _ := s.Query(doc, "/PLAY/ACT[1]/SCENE[1]/SPEECH[1]")
		if _, err := s.Insert(doc, hits[0].ID, After,
			"<SPEECH><SPEAKER>GHOST</SPEAKER><LINE>Mark me</LINE></SPEECH>"); err != nil {
			t.Fatal(err)
		}
		want, err := s.SerializeDocument(doc)
		if err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", s.Encoding(), err)
		}
		restored, err := OpenSnapshot(&buf)
		if err != nil {
			t.Fatalf("%s: restore: %v", s.Encoding(), err)
		}
		if restored.Encoding() != s.Encoding() {
			t.Errorf("encoding lost: %v", restored.Encoding())
		}
		got, err := restored.SerializeDocument(doc)
		if err != nil {
			t.Fatalf("%s: %v", s.Encoding(), err)
		}
		if got != want {
			t.Errorf("%s: snapshot round trip diverged", s.Encoding())
		}
		// The restored store is fully functional: query and update.
		speakers, err := restored.QueryValues(doc, "/PLAY/ACT[1]/SCENE[1]/SPEECH/SPEAKER")
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(speakers, ",") != "BERNARDO,GHOST,FRANCISCO" {
			t.Errorf("%s: speakers after restore = %v", s.Encoding(), speakers)
		}
		hits, _ = restored.Query(doc, "//SPEECH[SPEAKER = 'GHOST']")
		if len(hits) != 1 {
			t.Fatalf("ghost speech missing after restore")
		}
		if _, err := restored.Delete(doc, hits[0].ID); err != nil {
			t.Errorf("%s: update after restore: %v", s.Encoding(), err)
		}
	}
}

func TestSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.oxdb")
	s, _ := Open(Options{Encoding: Dewey, Gap: 4})
	doc, _ := s.LoadString("d", "<a><b>x</b></a>")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := restored.QueryValues(doc, "/a/b")
	if err != nil || len(vals) != 1 || vals[0] != "x" {
		t.Fatalf("restored query = %v, %v", vals, err)
	}
	// Gap option survives: an insert uses the restored gap for new keys.
	hits, _ := restored.Query(doc, "/a/b")
	rep, err := restored.Insert(doc, hits[0].ID, Before, "<c/>")
	if err != nil || rep.RowsRenumbered != 0 {
		t.Errorf("gap lost across snapshot: %+v, %v", rep, err)
	}
}

func TestSnapshotErrors(t *testing.T) {
	if _, err := OpenSnapshot(strings.NewReader("junk data")); err == nil {
		t.Error("junk snapshot opened")
	}
	if _, err := OpenSnapshot(strings.NewReader("")); err == nil {
		t.Error("empty snapshot opened")
	}
	if _, err := OpenFile("/nonexistent/path"); err == nil {
		t.Error("missing file opened")
	}
	// Truncated snapshot.
	s, _ := Open(Options{Encoding: Global})
	s.LoadString("d", "<a/>")
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if _, err := OpenSnapshot(bytes.NewReader(truncated)); err == nil {
		t.Error("truncated snapshot opened")
	}
}

// TestSnapshotRandomDocuments: snapshots of random documents restore
// byte-identically under every encoding.
func TestSnapshotRandomDocuments(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, opts := range []Options{
			{Encoding: Global}, {Encoding: Local}, {Encoding: Dewey, Gap: 4},
		} {
			s, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			tree := randomXML(seed)
			doc, err := s.LoadString("r", tree)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := s.SerializeDocument(doc)
			var buf bytes.Buffer
			if err := s.Save(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := OpenSnapshot(&buf)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, s.Encoding(), err)
			}
			got, err := back.SerializeDocument(doc)
			if err != nil || got != want {
				t.Fatalf("seed %d %s: snapshot diverged (%v)", seed, s.Encoding(), err)
			}
		}
	}
}
