package ordxml

import "ordxml/internal/core/dewey"

// deweyPathString renders a binary Dewey key in dotted form for display.
func deweyPathString(key []byte) (string, error) {
	p, err := dewey.FromBytes(key)
	if err != nil {
		return "", err
	}
	return p.String(), nil
}
