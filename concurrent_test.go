package ordxml

import (
	"fmt"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// Snapshot-isolation tests at the XML API level: N reader goroutines share a
// store with one writer applying order-maintenance updates. Every reader
// call pins one storage snapshot, and every intermediate state a mutation
// publishes is a structurally valid tree (inserted subtrees land in a single
// bulk statement; deletes remove children before parents), so readers must
// always see a well-formed, serializable document — under all three
// encodings, whose update paths differ completely.

var itemValue = regexp.MustCompile(`^t[0-9]+$`)

// TestConcurrentReadersWithWriter runs 4 readers × 1 writer per encoding
// under -race: readers query, extract values, and serialize the whole
// document while the writer inserts, renames, rewrites and deletes; after
// the writer stops, the deep integrity checker must come back clean.
func TestConcurrentReadersWithWriter(t *testing.T) {
	for _, enc := range []Encoding{Global, Local, Dewey} {
		enc := enc
		t.Run(enc.String(), func(t *testing.T) {
			t.Parallel()
			store, err := Open(Options{Encoding: enc, Gap: 4})
			if err != nil {
				t.Fatal(err)
			}
			doc, err := store.LoadString("conc",
				"<R><item>t0</item><item>t1</item><item>t2</item></R>")
			if err != nil {
				t.Fatal(err)
			}
			root := int64(1)

			var stop atomic.Bool
			var writer sync.WaitGroup
			writer.Add(1)
			go func() {
				defer writer.Done()
				var live []NodeID
				for i := 3; !stop.Load(); i++ {
					rep, err := store.Insert(doc, root, LastChild, fmt.Sprintf("<item>t%d</item>", i))
					if err != nil {
						t.Errorf("writer insert: %v", err)
						return
					}
					live = append(live, rep.NewID)
					if err := store.SetValue(doc, rep.NewID+1, fmt.Sprintf("t%d", i+1000)); err != nil {
						t.Errorf("writer setvalue: %v", err)
						return
					}
					if len(live) > 8 {
						if _, err := store.Delete(doc, live[0]); err != nil {
							t.Errorf("writer delete: %v", err)
							return
						}
						live = live[1:]
					}
				}
			}()

			readers := 4
			var rg sync.WaitGroup
			rg.Add(readers)
			for r := 0; r < readers; r++ {
				go func() {
					defer rg.Done()
					for i := 0; i < 60; i++ {
						nodes, err := store.Query(doc, "/R/item")
						if err != nil {
							t.Errorf("reader query: %v", err)
							return
						}
						if len(nodes) < 3 {
							t.Errorf("reader saw %d items, want >= 3", len(nodes))
							return
						}
						vals, err := store.QueryValues(doc, "/R/item")
						if err != nil {
							t.Errorf("reader values: %v", err)
							return
						}
						for _, v := range vals {
							if !itemValue.MatchString(v) {
								t.Errorf("torn item value %q", v)
								return
							}
						}
						xml, err := store.SerializeDocument(doc)
						if err != nil {
							t.Errorf("reader serialize: %v", err)
							return
						}
						if !strings.HasPrefix(xml, "<R>") || !strings.HasSuffix(xml, "</R>") {
							t.Errorf("serialized document lost its root: %.80q", xml)
							return
						}
						// A snapshot serialization must itself be a loadable
						// document — the strongest structural check we have.
						if i%20 == 0 {
							scratch, err := Open(Options{Encoding: enc})
							if err != nil {
								t.Error(err)
								return
							}
							if _, err := scratch.LoadString("copy", xml); err != nil {
								t.Errorf("snapshot serialization does not reload: %v\n%.200s", err, xml)
								return
							}
						}
					}
				}()
			}
			rg.Wait()
			stop.Store(true)
			writer.Wait()
			mustIntact(t, store)
		})
	}
}

// TestReadCompletesDuringLongWrite is the XML-level no-lock check: a single
// Insert that renumbers thousands of following siblings (Global encoding,
// gap 1 — the paper's worst case) runs while readers repeatedly serialize
// the other document. The readers must finish many rounds even though the
// write lock is taken per statement, and see either the before or the after
// state of the insert, never an error.
func TestReadCompletesDuringLongWrite(t *testing.T) {
	store, err := Open(Options{Encoding: Global, Gap: 1})
	if err != nil {
		t.Fatal(err)
	}
	var big strings.Builder
	big.WriteString("<R>")
	for i := 0; i < 3000; i++ {
		big.WriteString("<i>x</i>")
	}
	big.WriteString("</R>")
	bigDoc, err := store.LoadString("big", big.String())
	if err != nil {
		t.Fatal(err)
	}
	smallDoc, err := store.LoadString("small", "<S><a>1</a></S>")
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		// First-child insert with gap 1 renumbers every following node.
		if _, err := store.Insert(bigDoc, 1, FirstChild, "<i>new</i>"); err != nil {
			t.Errorf("long insert: %v", err)
		}
	}()

	rounds := 0
	for {
		select {
		case <-done:
			if rounds == 0 {
				t.Log("insert finished before first read; no overlap observed")
			} else {
				t.Logf("completed %d read rounds during the long write", rounds)
			}
			return
		default:
		}
		if _, err := store.QueryValues(smallDoc, "/S/a"); err != nil {
			t.Fatalf("read during long write: %v", err)
		}
		rounds++
	}
}
