package ordxml_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"ordxml"
)

// flatDoc builds a flat document big enough to clear the planner's parallel
// row threshold: 1+2*n nodes for n items.
func flatDoc(items int) string {
	var b strings.Builder
	b.WriteString("<catalog>")
	for i := 0; i < items; i++ {
		fmt.Fprintf(&b, "<item>v%d</item>", i)
	}
	b.WriteString("</catalog>")
	return b.String()
}

// spanIndex makes parent-chain walks over a trace snapshot cheap.
type spanIndex struct {
	byID   map[uint64]ordxml.SpanRecord
	byName map[string][]ordxml.SpanRecord
}

func indexSpans(recs []ordxml.SpanRecord) *spanIndex {
	ix := &spanIndex{byID: map[uint64]ordxml.SpanRecord{}, byName: map[string][]ordxml.SpanRecord{}}
	for _, r := range recs {
		ix.byID[r.ID] = r
		ix.byName[r.Name] = append(ix.byName[r.Name], r)
	}
	return ix
}

// rootOf follows parent links to the trace root's name.
func (ix *spanIndex) rootOf(r ordxml.SpanRecord) string {
	for r.Parent != 0 {
		p, ok := ix.byID[r.Parent]
		if !ok {
			return "" // parent fell out of the ring
		}
		r = p
	}
	return r.Name
}

// TestTraceSpanTreeAcceptance is the PR's acceptance check: a traced XPath
// query on a durable, pooled store yields a span tree containing the planner
// span, one operator span per Gather worker, and WAL/buffer-pool child spans
// from the surrounding load — and the whole buffer exports as Chrome
// trace-event JSON.
func TestTraceSpanTreeAcceptance(t *testing.T) {
	s, err := ordxml.OpenDurable(t.TempDir(), ordxml.Options{Encoding: ordxml.Global, BufferPoolFrames: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	s.Tracer().SetEnabled(true)
	id, err := s.LoadString("big", flatDoc(1500))
	if err != nil {
		t.Fatal(err)
	}
	s.SetParallelism(4)
	if _, err := s.Query(id, "/catalog/item"); err != nil {
		t.Fatal(err)
	}
	// A raw-SQL aggregate known to plan a Gather at parallelism 4.
	if _, err := s.SQL(`SELECT kind, COUNT(*) n FROM xg_nodes GROUP BY kind ORDER BY kind`); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	ix := indexSpans(s.Tracer().Snapshot())

	// The XPath pipeline: root with parse/translate/segment/sort children and
	// a planner span somewhere beneath it.
	if len(ix.byName["xpath.query"]) == 0 {
		t.Fatal("no xpath.query root span")
	}
	for _, stage := range []string{"parse", "translate", "segment"} {
		found := false
		for _, r := range ix.byName[stage] {
			if ix.rootOf(r) == "xpath.query" {
				found = true
			}
		}
		if !found {
			t.Errorf("no %q span under an xpath.query root", stage)
		}
	}
	planRoots := map[string]bool{}
	for _, r := range ix.byName["plan"] {
		planRoots[ix.rootOf(r)] = true
	}
	if !planRoots["xpath.query"] {
		t.Error("no planner span under an xpath.query root")
	}

	// One operator span per Gather worker, each on its own lane with a
	// distinct worker argument.
	workers := map[int64]bool{}
	lanes := map[uint64]bool{}
	for _, r := range ix.byName["gather.worker"] {
		lanes[r.Lane] = true
		for _, a := range r.Args {
			if a.Key == "worker" {
				workers[a.Val.(int64)] = true
			}
		}
	}
	if len(workers) != 4 || len(lanes) != 4 {
		t.Errorf("gather workers = %d distinct ids on %d lanes, want 4/4", len(workers), len(lanes))
	}

	// WAL and buffer-pool attribution: the load appended under its root, and
	// the checkpoint flushed the pool.
	if len(ix.byName["wal.append_sync"]) == 0 {
		t.Error("no wal.append_sync span (load/mutations not attributed)")
	} else if got := ix.rootOf(ix.byName["wal.append_sync"][0]); got != "store.load" && got != "store.exec" {
		t.Errorf("wal.append_sync rooted at %q", got)
	}
	if len(ix.byName["checkpoint"]) == 0 || len(ix.byName["bufpool.flush_all"]) == 0 {
		t.Error("checkpoint span tree incomplete")
	}

	// The buffer exports as Chrome trace-event JSON.
	var buf bytes.Buffer
	n, err := s.WriteTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("WriteTrace reported zero spans")
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  uint64         `json:"pid"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not Chrome JSON: %v", err)
	}
	if len(doc.TraceEvents) != n {
		t.Fatalf("traceEvents = %d, WriteTrace reported %d", len(doc.TraceEvents), n)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "i" {
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"xpath.query", "plan", "gather.worker", "wal.append_sync"} {
		if !names[want] {
			t.Errorf("chrome export missing %q event", want)
		}
	}
}

// TestTraceDisabledByDefault locks the zero-overhead contract: with the
// tracer off (the default), no spans are buffered by queries or mutations.
func TestTraceDisabledByDefault(t *testing.T) {
	s, err := ordxml.Open(ordxml.Options{Encoding: ordxml.Dewey})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.LoadString("d", "<list><i>a</i><i>b</i></list>")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(id, "/list/i[2]"); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Tracer().Snapshot()); n != 0 {
		t.Fatalf("tracer off but %d spans buffered", n)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Fatalf("empty trace export malformed: %s", buf.String())
	}
}

// TestTraceNestedMutationJoinsTrace ensures engine-internal calls join the
// ambient trace instead of opening nested roots: one Insert produces exactly
// one store.insert root.
func TestTraceNestedMutationJoinsTrace(t *testing.T) {
	s, err := ordxml.Open(ordxml.Options{Encoding: ordxml.Dewey})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.LoadString("d", "<list><i>a</i><i>b</i></list>")
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := s.Query(id, "/list/i[1]")
	if err != nil || len(nodes) != 1 {
		t.Fatalf("query: %v (%d nodes)", err, len(nodes))
	}
	s.Tracer().SetEnabled(true)
	if _, err := s.Insert(id, nodes[0].ID, ordxml.Before, "<i>a0</i>"); err != nil {
		t.Fatal(err)
	}
	roots := 0
	for _, r := range s.Tracer().Snapshot() {
		if r.Parent == 0 {
			if r.Name != "store.insert" {
				t.Errorf("unexpected root %q", r.Name)
			}
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("insert produced %d roots, want 1", roots)
	}
}
