// Quickstart: load an ordered XML document into a relational store, run
// ordered XPath queries, update it in place, and reconstruct it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ordxml"
)

const recipeBook = `<book>
  <recipe id="r1">
    <title>Pancakes</title>
    <step>Mix flour and milk</step>
    <step>Add eggs</step>
    <step>Fry until golden</step>
  </recipe>
  <recipe id="r2">
    <title>Omelette</title>
    <step>Beat eggs</step>
    <step>Cook gently</step>
  </recipe>
</book>`

func main() {
	// Open a store with the Dewey order encoding (the paper's best
	// all-rounder) and load a document.
	store, err := ordxml.Open(ordxml.Options{Encoding: ordxml.Dewey})
	if err != nil {
		log.Fatal(err)
	}
	doc, err := store.LoadString("recipes", recipeBook)
	if err != nil {
		log.Fatal(err)
	}

	// Ordered queries: position predicates respect document order.
	titles, err := store.QueryValues(doc, "/book/recipe/title")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recipes:", titles)

	second, err := store.QueryValues(doc, "/book/recipe[1]/step[2]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pancakes, step 2:", second[0])

	// Sibling axes see the same order.
	after, err := store.QueryValues(doc, "/book/recipe[1]/step[1]/following-sibling::step")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("steps after step 1:", after)

	// Updates preserve order: insert a forgotten step before step 3.
	steps, err := store.Query(doc, "/book/recipe[1]/step")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := store.Insert(doc, steps[2].ID, ordxml.Before, "<step>Heat the pan</step>")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %d node(s), renumbered %d row(s)\n", rep.RowsInserted, rep.RowsRenumbered)

	updated, err := store.QueryValues(doc, "/book/recipe[1]/step")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pancake steps now:", updated)

	// Reconstruct a subtree as XML.
	hit, err := store.Query(doc, "//recipe[@id = 'r2']")
	if err != nil || len(hit) != 1 {
		log.Fatal("recipe r2 not found")
	}
	xml, err := store.Serialize(doc, hit[0].ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("serialized r2:", xml)

	// Peek under the hood: the SQL the store generated for a query.
	sqls, err := store.ExplainQuery(doc, "/book/recipe[1]/step[2]")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated SQL:")
	for _, s := range sqls {
		fmt.Println(" ", s)
	}
}
