// Orderbook: a merchandising feed where *position is data* — the product
// list's order determines on-site placement, so reordering operations must
// be cheap and position queries exact. This is the "order as a first-class
// citizen" scenario from the paper's introduction, exercised through the
// public API: ranked reads, top-K queries, and native Move operations.
//
//	go run ./examples/orderbook
package main

import (
	"fmt"
	"log"
	"strings"

	"ordxml"
)

func main() {
	store, err := ordxml.Open(ordxml.Options{Encoding: ordxml.Dewey, Gap: 16})
	if err != nil {
		log.Fatal(err)
	}

	var sb strings.Builder
	sb.WriteString("<feed><lineup>")
	products := []string{"anvil", "beacon", "compass", "dynamo", "engine", "flywheel", "gasket", "hinge"}
	for i, p := range products {
		fmt.Fprintf(&sb, `<product sku="sku%d"><name>%s</name></product>`, i+1, p)
	}
	sb.WriteString("</lineup></feed>")
	doc, err := store.LoadString("feed", sb.String())
	if err != nil {
		log.Fatal(err)
	}

	show := func(label string) {
		names, err := store.QueryValues(doc, "/feed/lineup/product/name")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %s\n", label+":", strings.Join(names, " > "))
	}
	show("initial lineup")

	// Top-3 placement is a position-range query.
	top, err := store.QueryValues(doc, "/feed/lineup/product[position() <= 3]/name")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-3 shelf:", top)

	// What is ranked directly after the compass?
	next, err := store.QueryValues(doc,
		"/feed/lineup/product[name = 'compass']/following-sibling::product[1]/name")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after compass:", next)

	// Promote "gasket" to rank 2 with the native Move operation.
	moveToRank(store, doc, "gasket", 2)
	show("after promoting gasket")

	// Demote "anvil" to the end.
	moveToEnd(store, doc, "anvil")
	show("after demoting anvil")

	// A burst of promotions at the same rank: the gap absorbs renumbering.
	var renumbered int64
	for _, name := range []string{"engine", "hinge", "beacon"} {
		renumbered += moveToRank(store, doc, name, 1)
	}
	show("after three promotions")
	fmt.Printf("rows renumbered across the burst: %d (gap-based keys absorb churn)\n", renumbered)

	// Rank of every product, derived from document order.
	nodes, err := store.Query(doc, "/feed/lineup/product")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final ranking (order keys shown):")
	for i, n := range nodes {
		name, err := store.QueryValues(doc, fmt.Sprintf("/feed/lineup/product[%d]/name", i+1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  #%d %-10s key=%s\n", i+1, name[0], n.OrderKey)
	}
}

// moveToRank relocates the named product so it lands at the given 1-based
// rank using the native Move operation, returning rows renumbered.
func moveToRank(store *ordxml.Store, doc ordxml.DocID, name string, rank int) int64 {
	q := fmt.Sprintf("/feed/lineup/product[name = '%s']", name)
	hits, err := store.Query(doc, q)
	if err != nil || len(hits) != 1 {
		log.Fatalf("product %s: %v (%d hits)", name, err, len(hits))
	}
	anchor, err := store.Query(doc, fmt.Sprintf("/feed/lineup/product[%d]", rank))
	if err != nil || len(anchor) != 1 {
		log.Fatalf("rank %d: %v", rank, err)
	}
	rep, err := store.Move(doc, hits[0].ID, anchor[0].ID, ordxml.Before)
	if err != nil {
		log.Fatal(err)
	}
	return rep.RowsRenumbered
}

func moveToEnd(store *ordxml.Store, doc ordxml.DocID, name string) {
	q := fmt.Sprintf("/feed/lineup/product[name = '%s']", name)
	hits, err := store.Query(doc, q)
	if err != nil || len(hits) != 1 {
		log.Fatalf("product %s: %v", name, err)
	}
	lineup, err := store.Query(doc, "/feed/lineup")
	if err != nil || len(lineup) != 1 {
		log.Fatal("lineup missing")
	}
	if _, err := store.Move(doc, hits[0].ID, lineup[0].ID, ordxml.LastChild); err != nil {
		log.Fatal(err)
	}
}
