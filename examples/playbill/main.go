// Playbill: the paper's motivating workload — a deeply ordered document (a
// play) queried with position- and sibling-sensitive XPath, evaluated over
// all three order encodings side by side. For each query it shows the
// result, the per-encoding logical work (index probes + rows scanned), and
// which encoding the translation favours.
//
//	go run ./examples/playbill
package main

import (
	"fmt"
	"log"
	"strings"

	"ordxml"
	"ordxml/internal/xmlgen"
)

func main() {
	play := xmlgen.Play(xmlgen.PlayConfig{
		Acts: 4, ScenesPerAct: 5, SpeechesPerScene: 12, LinesPerSpeech: 4, Seed: 7,
	})
	xml := play.String()

	type env struct {
		name  string
		store *ordxml.Store
		doc   ordxml.DocID
	}
	var envs []env
	for _, enc := range []ordxml.Encoding{ordxml.Global, ordxml.Local, ordxml.Dewey} {
		s, err := ordxml.Open(ordxml.Options{Encoding: enc})
		if err != nil {
			log.Fatal(err)
		}
		doc, err := s.LoadString("play", xml)
		if err != nil {
			log.Fatal(err)
		}
		envs = append(envs, env{enc.String(), s, doc})
	}
	fmt.Printf("loaded a %d-node play into all three encodings\n\n", play.Size())

	queries := []struct {
		label string
		xpath string
	}{
		{"who opens act 2, scene 1?", "/PLAY/ACT[2]/SCENE[1]/SPEECH[1]/SPEAKER"},
		{"the last speech of the play's first scene", "/PLAY/ACT[1]/SCENE[1]/SPEECH[last()]/SPEAKER"},
		{"speeches right after the third one", "/PLAY/ACT[1]/SCENE[1]/SPEECH[3]/following-sibling::SPEECH[1]/SPEAKER"},
		{"every scene title", "//SCENE/TITLE"},
		{"all of HAMLET's lines in act 1", "/PLAY/ACT[1]//SPEECH[SPEAKER = 'HAMLET']/LINE"},
	}
	for _, q := range queries {
		fmt.Printf("%s\n  %s\n", q.label, q.xpath)
		for _, e := range envs {
			before := e.store.Counters()
			vals, err := e.store.QueryValues(e.doc, q.xpath)
			if err != nil {
				log.Fatalf("%s on %s: %v", q.xpath, e.name, err)
			}
			work := e.store.Counters().Sub(before)
			preview := ""
			if len(vals) > 0 {
				preview = vals[0]
				if len(preview) > 30 {
					preview = preview[:30] + "..."
				}
				if len(vals) > 1 {
					preview += fmt.Sprintf(" (+%d more)", len(vals)-1)
				}
			}
			fmt.Printf("  %-6s  %3d result(s)  work=%-5d  %s\n",
				e.name, len(vals), work.IndexProbes+work.RowsScanned, preview)
		}
		fmt.Println()
	}

	// The encodings diverge hardest on the descendant axis: show the SQL.
	fmt.Println("descendant-axis translation (//SPEAKER) per encoding:")
	for _, e := range envs {
		sqls, err := e.store.ExplainQuery(e.doc, "/PLAY/ACT[1]//SPEAKER")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %d statement(s)\n", e.name, len(sqls))
		for _, s := range sqls {
			fmt.Printf("    %s\n", clip(s, 120))
		}
	}
}

func clip(s string, n int) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}
