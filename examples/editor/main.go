// Editor: a document-editing session over a shredded XML manuscript — the
// update workload that motivates the paper's encoding comparison. The same
// edit script (insert sections at the front, middle and back; delete one)
// runs against all three encodings, and the per-edit renumbering cost is
// printed so the trade-off is visible: global renumbers the world, local
// only siblings, Dewey siblings plus their subtrees. A gap-based store runs
// the same script almost renumbering-free.
//
//	go run ./examples/editor
package main

import (
	"fmt"
	"log"
	"strings"

	"ordxml"
	"ordxml/internal/xmlgen"
)

func main() {
	manuscript := buildManuscript()
	fmt.Printf("manuscript: %d nodes\n\n", countNodes(manuscript))

	configs := []struct {
		name string
		opts ordxml.Options
	}{
		{"global (dense)", ordxml.Options{Encoding: ordxml.Global}},
		{"local (dense)", ordxml.Options{Encoding: ordxml.Local}},
		{"dewey (dense)", ordxml.Options{Encoding: ordxml.Dewey}},
		{"dewey (gap=32)", ordxml.Options{Encoding: ordxml.Dewey, Gap: 32}},
	}
	for _, cfg := range configs {
		store, err := ordxml.Open(cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		doc, err := store.LoadString("ms", manuscript)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", cfg.name)
		runEditScript(store, doc)
		fmt.Println()
	}
}

func buildManuscript() string {
	// A chaptered manuscript: reuse the play generator's shape with
	// editorial tags via a small rewrite.
	play := xmlgen.Play(xmlgen.PlayConfig{
		Acts: 3, ScenesPerAct: 6, SpeechesPerScene: 8, LinesPerSpeech: 3, Seed: 11,
	})
	xml := play.String()
	r := strings.NewReplacer(
		"PLAY", "manuscript", "ACT", "chapter", "SCENE", "section",
		"SPEECH", "paragraph", "SPEAKER", "lead", "LINE", "sentence", "TITLE", "heading",
	)
	return r.Replace(xml)
}

func countNodes(xml string) int {
	s, err := ordxml.Open(ordxml.Options{Encoding: ordxml.Local})
	if err != nil {
		return 0
	}
	doc, err := s.LoadString("tmp", xml)
	if err != nil {
		return 0
	}
	docs, _ := s.Documents()
	_ = doc
	return int(docs[0].Nodes)
}

func runEditScript(store *ordxml.Store, doc ordxml.DocID) {
	edit := func(label string, fn func() (ordxml.UpdateReport, error)) {
		rep, err := fn()
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("  %-42s renumbered %5d row(s)\n", label, rep.RowsRenumbered)
	}

	target := func(xpath string) ordxml.NodeID {
		hits, err := store.Query(doc, xpath)
		if err != nil || len(hits) == 0 {
			log.Fatalf("target %s: %v (%d hits)", xpath, err, len(hits))
		}
		return hits[0].ID
	}

	newSection := `<section><heading>Added</heading><paragraph><lead>EDITOR</lead><sentence>inserted text</sentence></paragraph></section>`

	edit("insert section at front of chapter 1", func() (ordxml.UpdateReport, error) {
		return store.Insert(doc, target("/manuscript/chapter[1]/section[1]"), ordxml.Before, newSection)
	})
	edit("insert section mid-chapter 2", func() (ordxml.UpdateReport, error) {
		return store.Insert(doc, target("/manuscript/chapter[2]/section[3]"), ordxml.Before, newSection)
	})
	edit("append section to chapter 3", func() (ordxml.UpdateReport, error) {
		return store.Insert(doc, target("/manuscript/chapter[3]"), ordxml.LastChild, newSection)
	})
	edit("insert paragraph before the very first one", func() (ordxml.UpdateReport, error) {
		return store.Insert(doc, target("/manuscript/chapter[1]/section[1]/paragraph[1]"),
			ordxml.Before, "<paragraph><lead>NOTE</lead><sentence>new opening</sentence></paragraph>")
	})
	edit("delete the second section of chapter 1", func() (ordxml.UpdateReport, error) {
		return store.Delete(doc, target("/manuscript/chapter[1]/section[2]"))
	})

	// The document stays coherent whatever the encoding.
	headings, err := store.QueryValues(doc, "/manuscript/chapter[1]/section/heading")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  chapter 1 sections now: %v\n", headings)
}
